package synth

import (
	"strings"
	"testing"
	"testing/quick"

	"c2nn/internal/netlist"
	"c2nn/internal/verilog"
)

// sim is a minimal reference interpreter over the elaborated netlist,
// used as the oracle for elaboration tests (the production simulator
// lives in internal/gatesim).
type sim struct {
	t    *testing.T
	nl   *netlist.Netlist
	lev  *netlist.Levelization
	vals []bool
	ffQ  []bool
}

func newSim(t *testing.T, nl *netlist.Netlist) *sim {
	t.Helper()
	lev, err := nl.Levelize()
	if err != nil {
		t.Fatalf("Levelize: %v", err)
	}
	s := &sim{t: t, nl: nl, lev: lev,
		vals: make([]bool, nl.NumNets()),
		ffQ:  make([]bool, len(nl.FFs)),
	}
	for i, ff := range nl.FFs {
		s.ffQ[i] = ff.Init
	}
	return s
}

func (s *sim) setInput(name string, v uint64) {
	p := s.nl.FindInput(name)
	if p == nil {
		s.t.Fatalf("no input %q", name)
	}
	for i, b := range p.Bits {
		s.vals[b] = v>>uint(i)&1 == 1
	}
}

// eval propagates the combinational core.
func (s *sim) eval() {
	s.vals[netlist.ConstOne] = true
	s.vals[netlist.ConstZero] = false
	for i, ff := range s.nl.FFs {
		s.vals[ff.Q] = s.ffQ[i]
	}
	var in [3]bool
	for _, gi := range s.lev.Order {
		g := &s.nl.Gates[gi]
		for k, id := range g.Inputs() {
			in[k] = s.vals[id]
		}
		s.vals[g.Out] = g.Kind.Eval(in[:g.Kind.Arity()])
	}
}

// step evaluates and then latches flip-flops (one clock cycle).
func (s *sim) step() {
	s.eval()
	for i, ff := range s.nl.FFs {
		s.ffQ[i] = s.vals[ff.D]
	}
}

func (s *sim) out(name string) uint64 {
	p := s.nl.FindOutput(name)
	if p == nil {
		s.t.Fatalf("no output %q", name)
	}
	var v uint64
	for i, b := range p.Bits {
		if s.vals[b] && i < 64 {
			v |= 1 << uint(i)
		}
	}
	return v
}

func elab(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	nl, err := ElaborateSource("", map[string]string{"test.v": src})
	if err != nil {
		t.Fatalf("ElaborateSource: %v", err)
	}
	return nl
}

func elabErr(t *testing.T, src string) error {
	t.Helper()
	_, err := ElaborateSource("", map[string]string{"test.v": src})
	if err == nil {
		t.Fatalf("elaboration unexpectedly succeeded")
	}
	return err
}

func TestAdder(t *testing.T) {
	nl := elab(t, `
module add8(input [7:0] a, b, input cin, output [7:0] sum, output cout);
  assign {cout, sum} = a + b + cin;
endmodule`)
	s := newSim(t, nl)
	cases := []struct{ a, b, c uint64 }{
		{0, 0, 0}, {1, 1, 0}, {255, 1, 0}, {255, 255, 1}, {170, 85, 1}, {200, 100, 0},
	}
	for _, c := range cases {
		s.setInput("a", c.a)
		s.setInput("b", c.b)
		s.setInput("cin", c.c)
		s.eval()
		total := c.a + c.b + c.c
		if s.out("sum") != total&0xff || s.out("cout") != total>>8&1 {
			t.Errorf("%d+%d+%d: sum=%d cout=%d", c.a, c.b, c.c, s.out("sum"), s.out("cout"))
		}
	}
}

func TestArithOps(t *testing.T) {
	nl := elab(t, `
module arith(input [7:0] a, b,
             output [7:0] diff, prod, quot, rem,
             output lt, gt, le, ge, eq, ne);
  assign diff = a - b;
  assign prod = a * b;
  assign quot = a / b;
  assign rem  = a % b;
  assign lt = a < b;
  assign gt = a > b;
  assign le = a <= b;
  assign ge = a >= b;
  assign eq = a == b;
  assign ne = a != b;
endmodule`)
	s := newSim(t, nl)
	f := func(a, b uint8) bool {
		s.setInput("a", uint64(a))
		s.setInput("b", uint64(b))
		s.eval()
		ok := s.out("diff") == uint64(a-b) &&
			s.out("prod") == uint64(a*b) &&
			s.out("lt") == b2u(a < b) && s.out("gt") == b2u(a > b) &&
			s.out("le") == b2u(a <= b) && s.out("ge") == b2u(a >= b) &&
			s.out("eq") == b2u(a == b) && s.out("ne") == b2u(a != b)
		if b != 0 {
			ok = ok && s.out("quot") == uint64(a/b) && s.out("rem") == uint64(a%b)
		}
		if !ok {
			t.Logf("a=%d b=%d diff=%d prod=%d quot=%d rem=%d", a, b,
				s.out("diff"), s.out("prod"), s.out("quot"), s.out("rem"))
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestSignedCompare(t *testing.T) {
	nl := elab(t, `
module scmp(input signed [7:0] a, b, output lt);
  assign lt = a < b;
endmodule`)
	s := newSim(t, nl)
	f := func(a, b int8) bool {
		s.setInput("a", uint64(uint8(a)))
		s.setInput("b", uint64(uint8(b)))
		s.eval()
		return s.out("lt") == b2u(a < b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShifts(t *testing.T) {
	nl := elab(t, `
module sh(input [15:0] a, input [3:0] n, input signed [15:0] sa,
          output [15:0] l, r, lc, rc, output signed [15:0] ra);
  assign l  = a << n;
  assign r  = a >> n;
  assign lc = a << 3;
  assign rc = a >> 5;
  assign ra = sa >>> n;
endmodule`)
	s := newSim(t, nl)
	f := func(a uint16, n8 uint8) bool {
		n := uint64(n8 % 16)
		s.setInput("a", uint64(a))
		s.setInput("sa", uint64(a))
		s.setInput("n", n)
		s.eval()
		want := uint64(a) << n & 0xffff
		wr := uint64(a) >> n
		wra := uint64(uint16(int16(a) >> n))
		return s.out("l") == want && s.out("r") == wr &&
			s.out("lc") == uint64(a)<<3&0xffff && s.out("rc") == uint64(a)>>5 &&
			s.out("ra") == wra
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionsAndLogical(t *testing.T) {
	nl := elab(t, `
module red(input [7:0] a, b, output ra, ro, rx, rna, rno, rnx, land, lor, lnot);
  assign ra = &a;
  assign ro = |a;
  assign rx = ^a;
  assign rna = ~&a;
  assign rno = ~|a;
  assign rnx = ~^a;
  assign land = a && b;
  assign lor = a || b;
  assign lnot = !a;
endmodule`)
	s := newSim(t, nl)
	f := func(a, b uint8) bool {
		s.setInput("a", uint64(a))
		s.setInput("b", uint64(b))
		s.eval()
		pop := 0
		for i := 0; i < 8; i++ {
			pop += int(a >> i & 1)
		}
		return s.out("ra") == b2u(a == 0xff) &&
			s.out("ro") == b2u(a != 0) &&
			s.out("rx") == uint64(pop%2) &&
			s.out("rna") == b2u(a != 0xff) &&
			s.out("rno") == b2u(a == 0) &&
			s.out("rnx") == uint64(1-pop%2) &&
			s.out("land") == b2u(a != 0 && b != 0) &&
			s.out("lor") == b2u(a != 0 || b != 0) &&
			s.out("lnot") == b2u(a == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatReplTernary(t *testing.T) {
	nl := elab(t, `
module ccat(input [3:0] a, input [3:0] b, input s, output [7:0] y, output [7:0] r);
  assign y = s ? {a, b} : {b, a};
  assign r = {2{a}};
endmodule`)
	s := newSim(t, nl)
	s.setInput("a", 0xA)
	s.setInput("b", 0x3)
	s.setInput("s", 1)
	s.eval()
	if s.out("y") != 0xA3 {
		t.Errorf("y = %#x, want 0xa3", s.out("y"))
	}
	if s.out("r") != 0xAA {
		t.Errorf("r = %#x, want 0xaa", s.out("r"))
	}
	s.setInput("s", 0)
	s.eval()
	if s.out("y") != 0x3A {
		t.Errorf("y = %#x, want 0x3a", s.out("y"))
	}
}

func TestBitAndPartSelect(t *testing.T) {
	nl := elab(t, `
module sel(input [15:0] a, input [3:0] i, output b, output [3:0] hi, output [3:0] dyn);
  assign b = a[i];
  assign hi = a[15:12];
  assign dyn = a[i +: 4];
endmodule`)
	s := newSim(t, nl)
	f := func(a uint16, i8 uint8) bool {
		i := uint64(i8 % 16)
		s.setInput("a", uint64(a))
		s.setInput("i", i)
		s.eval()
		wantDyn := uint64(a) >> i & 0xf
		return s.out("b") == uint64(a)>>i&1 &&
			s.out("hi") == uint64(a)>>12 &&
			s.out("dyn") == wantDyn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAlwaysCombCase(t *testing.T) {
	nl := elab(t, `
module alu(input [1:0] op, input [7:0] a, b, output reg [7:0] y);
  always @* begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = a - b;
      2'd2: y = a & b;
      default: y = a ^ b;
    endcase
  end
endmodule`)
	s := newSim(t, nl)
	f := func(op, a, b uint8) bool {
		s.setInput("op", uint64(op%4))
		s.setInput("a", uint64(a))
		s.setInput("b", uint64(b))
		s.eval()
		var want uint8
		switch op % 4 {
		case 0:
			want = a + b
		case 1:
			want = a - b
		case 2:
			want = a & b
		default:
			want = a ^ b
		}
		return s.out("y") == uint64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterWithReset(t *testing.T) {
	nl := elab(t, `
module ctr(input clk, rst, en, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (en) q <= q + 4'd1;
  end
endmodule`)
	if nl.NumFFs() != 4 {
		t.Fatalf("FFs = %d, want 4", nl.NumFFs())
	}
	s := newSim(t, nl)
	s.setInput("rst", 1)
	s.setInput("en", 0)
	s.step()
	s.setInput("rst", 0)
	s.setInput("en", 1)
	for i := 1; i <= 20; i++ {
		s.step()
		s.eval()
		if s.out("q") != uint64(i%16) {
			t.Fatalf("after %d steps q = %d", i, s.out("q"))
		}
	}
	// Hold when disabled.
	s.setInput("en", 0)
	s.step()
	s.eval()
	if s.out("q") != 20%16 {
		t.Fatalf("hold failed: q = %d", s.out("q"))
	}
}

func TestBlockingInClockedBlock(t *testing.T) {
	// tmp is blocking: q2 must see the same-cycle value of tmp.
	nl := elab(t, `
module blk(input clk, input [7:0] d, output reg [7:0] q2);
  reg [7:0] tmp;
  always @(posedge clk) begin
    tmp = d + 8'd1;
    q2 <= tmp + 8'd1;
  end
endmodule`)
	s := newSim(t, nl)
	s.setInput("d", 5)
	s.step()
	s.eval()
	if s.out("q2") != 7 {
		t.Fatalf("q2 = %d, want 7", s.out("q2"))
	}
}

func TestNonblockingSwap(t *testing.T) {
	// Classic swap: non-blocking reads must see pre-edge values.
	nl := elab(t, `
module swap(input clk, init, input [3:0] av, bv, output [3:0] ao, bo);
  reg [3:0] a, b;
  always @(posedge clk) begin
    if (init) begin
      a <= av;
      b <= bv;
    end else begin
      a <= b;
      b <= a;
    end
  end
  assign ao = a;
  assign bo = b;
endmodule`)
	s := newSim(t, nl)
	s.setInput("init", 1)
	s.setInput("av", 3)
	s.setInput("bv", 12)
	s.step()
	s.setInput("init", 0)
	s.step()
	s.eval()
	if s.out("ao") != 12 || s.out("bo") != 3 {
		t.Fatalf("swap failed: a=%d b=%d", s.out("ao"), s.out("bo"))
	}
}

func TestForLoopUnroll(t *testing.T) {
	nl := elab(t, `
module rev(input [7:0] a, output reg [7:0] y);
  integer i;
  always @* begin
    for (i = 0; i < 8; i = i + 1)
      y[i] = a[7 - i];
  end
endmodule`)
	s := newSim(t, nl)
	f := func(a uint8) bool {
		s.setInput("a", uint64(a))
		s.eval()
		var want uint64
		for i := 0; i < 8; i++ {
			want |= uint64(a>>uint(7-i)&1) << uint(i)
		}
		return s.out("y") == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionCall(t *testing.T) {
	nl := elab(t, `
module fn(input [7:0] x, output [7:0] y);
  function [7:0] clamp;
    input [7:0] v;
    input [7:0] lim;
    begin
      if (v > lim) clamp = lim;
      else clamp = v;
    end
  endfunction
  assign y = clamp(x, 8'd100);
endmodule`)
	s := newSim(t, nl)
	f := func(x uint8) bool {
		s.setInput("x", uint64(x))
		s.eval()
		want := uint64(x)
		if x > 100 {
			want = 100
		}
		return s.out("y") == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateForXor(t *testing.T) {
	nl := elab(t, `
module gx(input [7:0] a, b, output [7:0] y);
  genvar i;
  generate
    for (i = 0; i < 8; i = i + 1) begin : bitx
      wire t;
      assign t = a[i] ^ b[i];
      assign y[i] = t;
    end
  endgenerate
endmodule`)
	s := newSim(t, nl)
	s.setInput("a", 0xF0)
	s.setInput("b", 0x3C)
	s.eval()
	if s.out("y") != 0xCC {
		t.Fatalf("y = %#x", s.out("y"))
	}
}

func TestGenerateIf(t *testing.T) {
	nl := elab(t, `
module gi #(parameter INVERT = 1) (input a, output y);
  generate
    if (INVERT) begin
      assign y = ~a;
    end else begin
      assign y = a;
    end
  endgenerate
endmodule`)
	s := newSim(t, nl)
	s.setInput("a", 1)
	s.eval()
	if s.out("y") != 0 {
		t.Fatal("generate-if chose wrong arm")
	}
}

func TestHierarchyFlattening(t *testing.T) {
	nl := elab(t, `
module full_add(input a, b, cin, output sum, cout);
  assign sum = a ^ b ^ cin;
  assign cout = (a & b) | (cin & (a ^ b));
endmodule

module add4(input [3:0] a, b, input cin, output [3:0] s, output cout);
  wire [3:0] c;
  full_add fa0 (.a(a[0]), .b(b[0]), .cin(cin),  .sum(s[0]), .cout(c[0]));
  full_add fa1 (.a(a[1]), .b(b[1]), .cin(c[0]), .sum(s[1]), .cout(c[1]));
  full_add fa2 (.a(a[2]), .b(b[2]), .cin(c[1]), .sum(s[2]), .cout(c[2]));
  full_add fa3 (.a(a[3]), .b(b[3]), .cin(c[2]), .sum(s[3]), .cout(cout));
endmodule`)
	if nl.Name != "add4" {
		t.Fatalf("inferred top = %q", nl.Name)
	}
	s := newSim(t, nl)
	f := func(a, b uint8, cin bool) bool {
		av, bv := uint64(a%16), uint64(b%16)
		cv := b2u(cin)
		s.setInput("a", av)
		s.setInput("b", bv)
		s.setInput("cin", cv)
		s.eval()
		total := av + bv + cv
		return s.out("s") == total&0xf && s.out("cout") == total>>4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParameterOverride(t *testing.T) {
	nl := elab(t, `
module shifter #(parameter SH = 1) (input [7:0] a, output [7:0] y);
  assign y = a << SH;
endmodule

module top(input [7:0] a, output [7:0] y1, y3);
  shifter s1 (.a(a), .y(y1));
  shifter #(.SH(3)) s3 (.a(a), .y(y3));
endmodule`)
	s := newSim(t, nl)
	s.setInput("a", 1)
	s.eval()
	if s.out("y1") != 2 || s.out("y3") != 8 {
		t.Fatalf("y1=%d y3=%d", s.out("y1"), s.out("y3"))
	}
}

func TestNonANSIModule(t *testing.T) {
	nl := elab(t, `
module old (a, b, y);
  input [3:0] a;
  input [3:0] b;
  output [3:0] y;
  assign y = a & b;
endmodule`)
	s := newSim(t, nl)
	s.setInput("a", 0xC)
	s.setInput("b", 0xA)
	s.eval()
	if s.out("y") != 8 {
		t.Fatalf("y = %d", s.out("y"))
	}
}

func TestCasezPriorityEncoder(t *testing.T) {
	nl := elab(t, `
module pri(input [3:0] r, output reg [1:0] g, output reg v);
  always @* begin
    v = 1'b1;
    g = 2'd0;
    casez (r)
      4'b???1: g = 2'd0;
      4'b??10: g = 2'd1;
      4'b?100: g = 2'd2;
      4'b1000: g = 2'd3;
      default: v = 1'b0;
    endcase
  end
endmodule`)
	s := newSim(t, nl)
	for r := 0; r < 16; r++ {
		s.setInput("r", uint64(r))
		s.eval()
		if r == 0 {
			if s.out("v") != 0 {
				t.Errorf("r=0: v=%d", s.out("v"))
			}
			continue
		}
		want := uint64(0)
		for i := 0; i < 4; i++ {
			if r>>i&1 == 1 {
				want = uint64(i)
				break
			}
		}
		if s.out("v") != 1 || s.out("g") != want {
			t.Errorf("r=%b: g=%d v=%d want g=%d", r, s.out("g"), s.out("v"), want)
		}
	}
}

func TestLatchDetection(t *testing.T) {
	err := elabErr(t, `
module latch(input s, input d, output reg q);
  always @* begin
    if (s) q = d;
  end
endmodule`)
	if !strings.Contains(err.Error(), "latch") {
		t.Fatalf("err = %v", err)
	}
}

func TestInoutRejected(t *testing.T) {
	elabErr(t, `
module io(inout w);
endmodule`)
}

func TestUnknownSignal(t *testing.T) {
	err := elabErr(t, `
module u(input a, output y);
  assign y = a & ghost;
endmodule`)
	if !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownModule(t *testing.T) {
	elabErr(t, `
module top(input a, output y);
  missing u0 (.a(a), .y(y));
endmodule`)
}

func TestDoubleDriver(t *testing.T) {
	elabErr(t, `
module dd(input a, b, output y);
  assign y = a;
  assign y = b;
endmodule`)
}

func TestWireInitDecl(t *testing.T) {
	nl := elab(t, `
module wi(input [3:0] a, output [3:0] y);
  wire [3:0] t = a ^ 4'b1111;
  assign y = t;
endmodule`)
	s := newSim(t, nl)
	s.setInput("a", 0x5)
	s.eval()
	if s.out("y") != 0xA {
		t.Fatalf("y = %#x", s.out("y"))
	}
}

func TestWideLiteral(t *testing.T) {
	nl := elab(t, `
module wl(output [127:0] k);
  assign k = 128'h000102030405060708090a0b0c0d0e0f;
endmodule`)
	s := newSim(t, nl)
	s.eval()
	p := nl.FindOutput("k")
	// Byte 0 (LSB) must be 0x0f, byte 15 must be 0x00, byte 8 is 0x07.
	byteAt := func(i int) uint64 {
		var v uint64
		for b := 0; b < 8; b++ {
			if s.vals[p.Bits[i*8+b]] {
				v |= 1 << uint(b)
			}
		}
		return v
	}
	if byteAt(0) != 0x0f || byteAt(8) != 0x07 || byteAt(15) != 0x00 {
		t.Fatalf("bytes: %x %x %x", byteAt(0), byteAt(8), byteAt(15))
	}
}

func TestConcatLHS(t *testing.T) {
	nl := elab(t, `
module cl(input [7:0] x, output [3:0] hi, lo);
  assign {hi, lo} = x;
endmodule`)
	s := newSim(t, nl)
	s.setInput("x", 0xB7)
	s.eval()
	if s.out("hi") != 0xB || s.out("lo") != 0x7 {
		t.Fatalf("hi=%x lo=%x", s.out("hi"), s.out("lo"))
	}
}

func TestDynamicIndexWrite(t *testing.T) {
	nl := elab(t, `
module diw(input [2:0] i, input v, output reg [7:0] y);
  always @* begin
    y = 8'd0;
    y[i] = v;
  end
endmodule`)
	s := newSim(t, nl)
	for i := 0; i < 8; i++ {
		s.setInput("i", uint64(i))
		s.setInput("v", 1)
		s.eval()
		if s.out("y") != 1<<uint(i) {
			t.Fatalf("i=%d y=%#x", i, s.out("y"))
		}
	}
}

func TestAscendingRange(t *testing.T) {
	nl := elab(t, `
module ar(input [0:7] a, output [0:7] y, output msb);
  assign y = a;
  assign msb = a[0];
endmodule`)
	s := newSim(t, nl)
	s.setInput("a", 0x80) // bit index 0 is the MSB: stored at offset 7
	s.eval()
	if s.out("msb") != 1 {
		t.Fatalf("msb = %d", s.out("msb"))
	}
}

func TestMultiClockUnified(t *testing.T) {
	// Two clocked blocks on different clocks: clock unification keeps
	// clk1 as the global step and resynchronises the clk2 domain with an
	// edge detector (q1, q2, clk2$prev = 3 flip-flops).
	nl := elab(t, `
module mc(input clk1, clk2, input d, output reg q1, q2);
  always @(posedge clk1) q1 <= d;
  always @(posedge clk2) q2 <= d;
endmodule`)
	if nl.NumFFs() != 3 {
		t.Fatalf("FFs = %d, want 3 (q1, q2, edge detector)", nl.NumFFs())
	}
	s := newSim(t, nl)
	// q2 must update only on rising edges of clk2 (sampled per global
	// cycle), while q1 updates every cycle.
	s.setInput("clk2", 0)
	s.setInput("d", 1)
	s.step()
	s.eval()
	if s.out("q1") != 1 || s.out("q2") != 0 {
		t.Fatalf("after cycle 1: q1=%d q2=%d", s.out("q1"), s.out("q2"))
	}
	s.setInput("clk2", 1) // rising edge of clk2 this cycle
	s.step()
	s.eval()
	if s.out("q2") != 1 {
		t.Fatalf("q2 missed clk2 rising edge")
	}
	s.setInput("d", 0)
	s.setInput("clk2", 1) // clk2 held high: no edge, q2 must hold
	s.step()
	s.eval()
	if s.out("q1") != 0 || s.out("q2") != 1 {
		t.Fatalf("q2 updated without clk2 edge: q1=%d q2=%d", s.out("q1"), s.out("q2"))
	}
}

func TestDividedClockDomain(t *testing.T) {
	// A divided clock drives a counter: the counter must advance once
	// per rising edge of the divider, i.e. once every two global cycles.
	nl := elab(t, `
module dv(input clk, rst, output [3:0] count);
  reg div;
  reg [3:0] cnt;
  always @(posedge clk) begin
    if (rst) div <= 1'b0;
    else div <= ~div;
  end
  always @(posedge div) begin
    if (rst) cnt <= 4'd0;
    else cnt <= cnt + 4'd1;
  end
  assign count = cnt;
endmodule`)
	s := newSim(t, nl)
	s.setInput("rst", 1)
	s.step()
	s.step()
	s.setInput("rst", 0)
	for cyc := 1; cyc <= 12; cyc++ {
		s.step()
		s.eval()
		// div toggles 0->1 on even global cycles (starting at cycle 1:
		// div=1 after cycle 1, edge detected during cycle 2 latches at
		// its end). The count therefore advances every 2 cycles.
		want := uint64(cyc / 2)
		if s.out("count") != want {
			t.Fatalf("cycle %d: count=%d want %d", cyc, s.out("count"), want)
		}
	}
}

func TestNegedgeBlock(t *testing.T) {
	nl := elab(t, `
module ng(input clk, input d, output reg qp, qn);
  always @(posedge clk) qp <= d;
  always @(negedge clk) qn <= d;
endmodule`)
	s := newSim(t, nl)
	// The step is the posedge; qn updates when clk falls (sampled value
	// transitions 1 -> 0 across a global cycle).
	s.setInput("clk", 1)
	s.setInput("d", 1)
	s.step()             // prev samples clk=1
	s.setInput("clk", 0) // falling edge this cycle
	s.step()
	s.eval()
	if s.out("qn") != 1 {
		t.Fatalf("qn missed the falling edge")
	}
	s.setInput("d", 0)
	s.setInput("clk", 0) // no edge: hold
	s.step()
	s.eval()
	if s.out("qn") != 1 {
		t.Fatalf("qn updated without a falling edge")
	}
}

func TestPowerOperator(t *testing.T) {
	nl := elab(t, `
module pw(input [7:0] a, output [7:0] y);
  assign y = a ** 2;
endmodule`)
	s := newSim(t, nl)
	s.setInput("a", 13)
	s.eval()
	if s.out("y") != (13*13)&0xff {
		t.Fatalf("y = %d", s.out("y"))
	}
}

func TestLoCCount(t *testing.T) {
	// Sanity: the elaborated netlist for a realistic module is non-trivial
	// and Optimize keeps it valid.
	nl := elab(t, `
module mixed(input clk, input [7:0] a, b, output reg [7:0] acc, output [7:0] comb);
  assign comb = (a * b) ^ {b[3:0], a[7:4]};
  always @(posedge clk) acc <= acc + comb;
endmodule`)
	if nl.NumGates() == 0 || nl.NumFFs() != 8 {
		t.Fatalf("gates=%d ffs=%d", nl.NumGates(), nl.NumFFs())
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Cross-check a random expression circuit against a Go model.
func TestRandomExprEquivalence(t *testing.T) {
	nl := elab(t, `
module rexpr(input [15:0] a, b, c, output [15:0] y);
  assign y = ((a & b) | (~c & a)) ^ ((a + c) - (b >> 2)) ^ (b < c ? a : c);
endmodule`)
	s := newSim(t, nl)
	f := func(a, b, c uint16) bool {
		s.setInput("a", uint64(a))
		s.setInput("b", uint64(b))
		s.setInput("c", uint64(c))
		s.eval()
		var t3 uint16
		if b < c {
			t3 = a
		} else {
			t3 = c
		}
		want := ((a & b) | (^c & a)) ^ ((a + c) - (b >> 2)) ^ t3
		return s.out("y") == uint64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Elaborate with explicit Options (no optimisation) and verify the
// Optimize pass preserves behaviour on a sequential design.
func TestOptimizePreservesSequential(t *testing.T) {
	design, err := verilog.BuildDesign(map[string]string{"t.v": `
module lfsr(input clk, rst, output [7:0] state);
  reg [7:0] r;
  always @(posedge clk) begin
    if (rst) r <= 8'h1;
    else r <= {r[6:0], r[7] ^ r[5] ^ r[4] ^ r[3]};
  end
  assign state = r;
endmodule`}, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Elaborate(design, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Elaborate(design, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumGates() >= raw.NumGates() {
		t.Errorf("optimise did not shrink: %d -> %d", raw.NumGates(), opt.NumGates())
	}
	s1 := newSim(t, raw)
	s2 := newSim(t, opt)
	run := func(s *sim) []uint64 {
		var seq []uint64
		s.setInput("rst", 1)
		s.step()
		s.setInput("rst", 0)
		for i := 0; i < 50; i++ {
			s.step()
			s.eval()
			seq = append(seq, s.out("state"))
		}
		return seq
	}
	a, b := run(s1), run(s2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cycle %d: raw=%#x opt=%#x", i, a[i], b[i])
		}
	}
}
