package fault

import (
	"fmt"
	"sort"

	"c2nn/internal/exec/plan"
	"c2nn/internal/irlint/diag"
	"c2nn/internal/lutmap"
	"c2nn/internal/truthtab"
)

// Fault-stage lint rules: the overlay compiler and the universe
// collapser are verified the same way every other pipeline stage is —
// declared against the diag registry and orchestrated by
// internal/irlint.
var (
	// RuleOverlayTarget flags overlay ops whose layer, unit or lane
	// falls outside the plan and batch they are applied to.
	RuleOverlayTarget = diag.Register(diag.Rule{
		ID: "FT001", Stage: diag.StageFault, Severity: diag.Error,
		Summary: "fault overlay ops must target layers, units and lanes that exist in the plan",
	})
	// RuleGoldenLane flags overlay ops on batch lane 0, which must stay
	// the fault-free reference machine.
	RuleGoldenLane = diag.Register(diag.Rule{
		ID: "FT002", Stage: diag.StageFault, Severity: diag.Error,
		Summary: "batch lane 0 (the golden machine) must stay overlay-free",
	})
	// RuleClassConsistency flags collapsed classes that do not partition
	// the fault universe or whose members are not provably equivalent.
	RuleClassConsistency = diag.Register(diag.Rule{
		ID: "FT003", Stage: diag.StageFault, Severity: diag.Error,
		Summary: "collapsed fault classes must partition the universe into equivalent members",
	})
	// RuleEmptyUniverse warns when nothing can be graded.
	RuleEmptyUniverse = diag.Register(diag.Rule{
		ID: "FT004", Stage: diag.StageFault, Severity: diag.Warning,
		Summary: "fault universe has no simulatable class",
	})
)

// Lint verifies a compiled overlay against the plan it will run on and
// the batch size of the engine (rules FT001, FT002).
func (o *Overlay) Lint(p *plan.Plan, batch int) []diag.Diagnostic {
	var ds []diag.Diagnostic
	tr := o.model.Trace

	checkLane := func(loc string, lane int) {
		if lane < 0 || lane >= batch {
			ds = append(ds, RuleOverlayTarget.New(loc, "lane %d outside batch of %d", lane, batch))
		}
		if lane == 0 {
			ds = append(ds, RuleGoldenLane.New(loc, "op targets the golden lane"))
		}
	}
	checkUnit := func(loc string, unit int32) {
		if unit < 0 || int(unit) >= len(p.Slot) {
			ds = append(ds, RuleOverlayTarget.New(loc, "unit %d outside the plan's %d units", unit, len(p.Slot)))
		}
	}
	checkLayer := func(loc string, li int) {
		if li < 0 || li >= len(p.Layers) {
			ds = append(ds, RuleOverlayTarget.New(loc, "hook layer %d outside the plan's %d layers", li, len(p.Layers)))
		}
	}
	checkTerms := func(loc string, lut int32) {
		lt := &tr.LUTs[lut]
		for _, tu := range lt.TermUnits {
			checkUnit(loc, tu)
		}
	}

	layers := make([]int, 0, len(o.forces)+len(o.pins))
	for li := range o.forces {
		layers = append(layers, li)
	}
	for li := range o.pins {
		if _, dup := o.forces[li]; !dup {
			layers = append(layers, li)
		}
	}
	sort.Ints(layers)
	for _, li := range layers {
		loc := fmt.Sprintf("layer %d", li)
		checkLayer(loc, li)
		for _, op := range o.forces[li] {
			checkLane(loc, op.lane)
			checkTerms(loc, op.lut)
		}
		for _, op := range o.pins[li] {
			checkLane(loc, op.lane)
			checkTerms(loc, op.lut)
		}
	}
	for i, s := range o.seus {
		loc := fmt.Sprintf("seu %d", i)
		checkLane(loc, s.lane)
		checkUnit(loc, s.unit)
	}
	return ds
}

// Lint verifies the collapsed universe against the graph it was
// enumerated from (rules FT003, FT004): classes must partition the full
// single-fault universe, representatives must be members, members on
// one LUT must share a faulty truth table, and cross-LUT members must
// be justified by a single-reader stem/branch edge.
func (u *Universe) Lint(g *lutmap.Graph) []diag.Diagnostic {
	var ds []diag.Diagnostic

	// Partition: every enumerable fault exactly once.
	want := 0
	for lut := range g.LUTs {
		want += 2 + 2*len(g.LUTs[lut].Ins)
	}
	want += u.NumFFs
	seen := make(map[Fault]int)
	total := 0
	for ci := range u.Classes {
		for _, m := range u.Classes[ci].Members {
			seen[m]++
			total++
		}
	}
	if total != want || len(seen) != total {
		ds = append(ds, RuleClassConsistency.New("universe",
			"classes carry %d members (%d distinct) for a universe of %d faults", total, len(seen), want))
	}

	simulatable := false
	for ci := range u.Classes {
		c := &u.Classes[ci]
		loc := fmt.Sprintf("class %d", ci)
		if c.Status == Simulated {
			simulatable = true
		}
		repSeen := false
		for _, m := range c.Members {
			if m == c.Rep {
				repSeen = true
				break
			}
		}
		if !repSeen {
			ds = append(ds, RuleClassConsistency.New(loc, "representative %s is not a member", c.Rep))
		}
		// Every member must be connected to the class by a direct merge
		// edge: local equivalence (a same-LUT member with an identical
		// faulty truth table) or a stem/branch edge (a branch pin fault
		// together with the output fault, of the same polarity, of the
		// LUT driving that pin). Union-find only ever merges along these
		// edges, so per-member edge checking is complete.
		for _, m := range c.Members {
			if m.Kind == SEU {
				if len(c.Members) != 1 {
					ds = append(ds, RuleClassConsistency.New(loc, "SEU fault %s collapsed with other faults", m))
				}
				continue
			}
			if len(c.Members) == 1 {
				continue
			}
			justified := false
			mt := faultyTable(g, m)
			for _, o := range c.Members {
				if o == m || o.Kind == SEU {
					continue
				}
				// Local equivalence on the same LUT.
				if o.LUT == m.LUT && mt.Equal(faultyTable(g, o)) {
					justified = true
					break
				}
				if o.StuckVal() != m.StuckVal() {
					continue
				}
				// Stem/branch: m is the branch pin reading o's stem LUT,
				// or the other way around.
				if (m.Kind == PinSA0 || m.Kind == PinSA1) && (o.Kind == OutSA0 || o.Kind == OutSA1) {
					if in := g.LUTs[m.LUT].Ins[m.Pin]; !in.IsPI() && in.LUT() == o.LUT {
						justified = true
						break
					}
				}
				if (m.Kind == OutSA0 || m.Kind == OutSA1) && (o.Kind == PinSA0 || o.Kind == PinSA1) {
					if in := g.LUTs[o.LUT].Ins[o.Pin]; !in.IsPI() && in.LUT() == m.LUT {
						justified = true
						break
					}
				}
			}
			if !justified {
				ds = append(ds, RuleClassConsistency.New(loc,
					"member %s has no merge-edge justification in its class", m))
			}
		}
	}
	if !simulatable {
		ds = append(ds, RuleEmptyUniverse.New("universe", "no class has status simulated"))
	}
	return ds
}

// faultyTable recomputes the local faulty truth table of a stuck-at
// fault (the lint oracle, independent of the enumeration path).
func faultyTable(g *lutmap.Graph, f Fault) truthtab.Table {
	t := g.LUTs[f.LUT].Table
	switch f.Kind {
	case OutSA0:
		return truthtab.Const(t.NumVars, false)
	case OutSA1:
		return truthtab.Const(t.NumVars, true)
	default:
		return pinFaultTable(t, f.Pin, f.StuckVal())
	}
}
