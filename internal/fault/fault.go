// Package fault implements stuck-at fault injection and coverage
// grading on compiled circuits — the classic EDA workload the batched
// engine is built for: lane 0 of a batch carries the golden machine and
// every other lane one faulty machine, so the bit-packed backend grades
// 63 faults per uint64 word per forward pass (the fault-parallel trick
// of GPU fault simulators, recast onto the paper's stimulus-parallel
// NN formulation).
//
// The fault model covers single stuck-at-0/1 faults on every LUT input
// pin and output of the mapped computation graph, plus single-event
// upsets (SEU) on flip-flop state. Structural collapsing merges
// equivalent faults (identical faulty truth tables within a LUT;
// stem/branch equivalence across single-reader LUT edges) and drops
// locally dominated output faults, so only class representatives are
// simulated.
//
// Injection works through the nn.Trace provenance: a LUT's behaviour in
// one lane is forced by rewriting its polynomial term neurons to a
// chosen input assignment x′ between plan layers, which makes every
// downstream reader — merged linear forms, output rows, flip-flop
// feedback — see exactly LUT(x′). See docs/FAULT.md.
package fault

import (
	"fmt"
	"strings"

	"c2nn/internal/lutmap"
	"c2nn/internal/truthtab"
)

// Kind enumerates fault kinds.
type Kind uint8

// Fault kinds.
const (
	// OutSA0 / OutSA1 are stuck-at faults on a LUT output.
	OutSA0 Kind = iota
	OutSA1
	// PinSA0 / PinSA1 are stuck-at faults on one LUT input pin.
	PinSA0
	PinSA1
	// SEU is a single-event upset: one flip-flop's state bit flips once
	// during the run.
	SEU
)

// Fault identifies one fault site.
type Fault struct {
	Kind Kind
	LUT  int // LUT index (OutSA*, PinSA*)
	Pin  int // input pin index (PinSA*)
	FF   int // flip-flop index (SEU)
}

// String renders the canonical fault name, e.g. "lut12/sa0",
// "lut12.in3/sa1", "ff4/seu".
func (f Fault) String() string {
	switch f.Kind {
	case OutSA0:
		return fmt.Sprintf("lut%d/sa0", f.LUT)
	case OutSA1:
		return fmt.Sprintf("lut%d/sa1", f.LUT)
	case PinSA0:
		return fmt.Sprintf("lut%d.in%d/sa0", f.LUT, f.Pin)
	case PinSA1:
		return fmt.Sprintf("lut%d.in%d/sa1", f.LUT, f.Pin)
	case SEU:
		return fmt.Sprintf("ff%d/seu", f.FF)
	}
	return fmt.Sprintf("fault(kind=%d)", uint8(f.Kind))
}

// StuckVal returns the stuck value of a stuck-at fault.
func (f Fault) StuckVal() bool { return f.Kind == OutSA1 || f.Kind == PinSA1 }

// Status classifies a collapsed fault class.
type Status uint8

// Class statuses.
const (
	// Simulated classes have their representative graded on a batch lane.
	Simulated Status = iota
	// Untestable classes leave the LUT's function unchanged (the faulty
	// truth table equals the good one); no stimulus can detect them.
	Untestable
	// Dominated output faults are detected by every test of a surviving
	// pin fault of the same LUT, so grading them adds no information.
	Dominated
	// Unmodeled faults cannot be expressed as an input-assignment
	// forcing (a stuck-at on a constant LUT's output toward the
	// non-constant value); they are excluded from the coverage
	// denominator and reported separately.
	Unmodeled
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Simulated:
		return "simulated"
	case Untestable:
		return "untestable"
	case Dominated:
		return "dominated"
	case Unmodeled:
		return "unmodeled"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Class is one collapsed equivalence class of faults.
type Class struct {
	// Rep is the fault injected when the class is simulated.
	Rep Fault
	// Members lists every collapsed fault, in enumeration order.
	Members []Fault
	// Status decides whether the class is graded.
	Status Status
}

// Universe is the enumerated and collapsed fault universe of a mapped
// circuit.
type Universe struct {
	// Raw is the number of enumerated faults before collapsing.
	Raw int
	// Classes are the collapsed classes, in enumeration order of their
	// first member. SEU classes follow all stuck-at classes.
	Classes []Class
	// NumFFs is the flip-flop count (one SEU class each).
	NumFFs int
}

// Counts tallies classes by status.
func (u *Universe) Counts() (simulated, untestable, dominated, unmodeled int) {
	for i := range u.Classes {
		switch u.Classes[i].Status {
		case Simulated:
			simulated++
		case Untestable:
			untestable++
		case Dominated:
			dominated++
		case Unmodeled:
			unmodeled++
		}
	}
	return
}

// SimulatedClasses returns the indices of classes to grade, in order.
func (u *Universe) SimulatedClasses() []int {
	var out []int
	for i := range u.Classes {
		if u.Classes[i].Status == Simulated {
			out = append(out, i)
		}
	}
	return out
}

// Enumerate builds the full single-fault universe of a mapped graph —
// stuck-at-0/1 on every LUT pin and output plus one SEU per flip-flop —
// and collapses it structurally. The result is deterministic: class
// order follows fault enumeration order (per LUT: output sa0, sa1, then
// pin faults pin-major), so detected-fault sets are comparable across
// backends and runs.
func Enumerate(g *lutmap.Graph, numFFs int) *Universe {
	// Flat fault indexing: per LUT u, faults occupy
	// base[u] .. base[u]+2+2·len(Ins): out/sa0, out/sa1, then for each
	// pin p: p/sa0, p/sa1.
	base := make([]int, len(g.LUTs)+1)
	for u := range g.LUTs {
		base[u+1] = base[u] + 2 + 2*len(g.LUTs[u].Ins)
	}
	n := base[len(g.LUTs)]
	faults := make([]Fault, n)
	tables := make([]truthtab.Table, n) // faulty truth table of each fault
	untestable := make([]bool, n)       // faulty == good
	unmodelable := make([]bool, n)      // no forcing assignment exists
	uf := newUnionFind(n)

	for u := range g.LUTs {
		t := g.LUTs[u].Table
		b := base[u]
		faults[b] = Fault{Kind: OutSA0, LUT: u}
		faults[b+1] = Fault{Kind: OutSA1, LUT: u}
		tables[b] = truthtab.Const(t.NumVars, false)
		tables[b+1] = truthtab.Const(t.NumVars, true)
		for p := range g.LUTs[u].Ins {
			faults[b+2+2*p] = Fault{Kind: PinSA0, LUT: u, Pin: p}
			faults[b+3+2*p] = Fault{Kind: PinSA1, LUT: u, Pin: p}
			tables[b+2+2*p] = pinFaultTable(t, p, false)
			tables[b+3+2*p] = pinFaultTable(t, p, true)
		}
		// Local equivalence: identical faulty tables collapse.
		groups := make(map[string]int)
		for i := b; i < base[u+1]; i++ {
			untestable[i] = tables[i].Equal(t)
			key := tableKey(tables[i])
			if leader, ok := groups[key]; ok {
				uf.union(leader, i)
			} else {
				groups[key] = i
			}
		}
		// Output stuck-at-v is unmodelable when no input assignment
		// produces v (constant LUTs only; such faults are still real —
		// they just cannot be expressed as a term forcing).
		if c, v := t.IsConst(); c {
			if v {
				unmodelable[b] = true
			} else {
				unmodelable[b+1] = true
			}
		}
	}

	// Stem/branch equivalence: an output fault on a LUT with exactly one
	// reader pin and no direct graph-output reference is the same fault
	// as the stuck-at on that reader pin.
	type readerRef struct{ lut, pin int }
	readers := make(map[int][]readerRef)
	for u := range g.LUTs {
		for p, in := range g.LUTs[u].Ins {
			if !in.IsPI() {
				readers[in.LUT()] = append(readers[in.LUT()], readerRef{u, p})
			}
		}
	}
	outRef := make(map[int]bool)
	for _, ref := range g.Outputs {
		if !ref.IsPI() {
			outRef[ref.LUT()] = true
		}
	}
	for d := range g.LUTs {
		rs := readers[d]
		if len(rs) != 1 || outRef[d] {
			continue
		}
		r := rs[0]
		uf.union(base[d], base[r.lut]+2+2*r.pin)   // sa0 stem == sa0 branch
		uf.union(base[d]+1, base[r.lut]+3+2*r.pin) // sa1 stem == sa1 branch
	}

	// Local dominance: drop an output stuck-at-w whose class was not
	// merged with anything when some testable pin fault of the same LUT
	// forces the output to w on every test (every test of the pin fault
	// then detects the output fault too).
	dominated := make([]bool, n)
	for u := range g.LUTs {
		t := g.LUTs[u].Table
		b := base[u]
		for w := 0; w < 2; w++ {
			out := b + w
			if untestable[out] || uf.size(out) != 1 {
				continue
			}
			for i := b + 2; i < base[u+1]; i++ {
				if untestable[i] || !forcesTo(t, tables[i], w == 1) {
					continue
				}
				dominated[out] = true
				break
			}
		}
	}

	// Materialise classes in first-member order.
	u := &Universe{Raw: n + numFFs, NumFFs: numFFs}
	classOf := make(map[int]int)
	for i := 0; i < n; i++ {
		root := uf.find(i)
		ci, ok := classOf[root]
		if !ok {
			ci = len(u.Classes)
			classOf[root] = ci
			u.Classes = append(u.Classes, Class{})
		}
		u.Classes[ci].Members = append(u.Classes[ci].Members, faults[i])
	}
	for i := 0; i < n; i++ {
		ci := classOf[uf.find(i)]
		c := &u.Classes[ci]
		if untestable[i] {
			c.Status = Untestable
		}
		if dominated[i] && c.Status != Untestable {
			c.Status = Dominated
		}
	}
	// Representative: the first modelable member (output faults come
	// first in enumeration order, so cheap static forcings win when
	// available). A class whose members are all unmodelable cannot be
	// graded.
	for ci := range u.Classes {
		c := &u.Classes[ci]
		rep, found := -1, false
		for _, m := range c.Members {
			idx := faultIndex(base, m)
			if !unmodelable[idx] {
				rep = idx
				found = true
				break
			}
		}
		if !found {
			c.Rep = c.Members[0]
			if c.Status == Simulated {
				c.Status = Unmodeled
			}
			continue
		}
		c.Rep = faults[rep]
	}

	// One SEU class per flip-flop, uncollapsed.
	for i := 0; i < numFFs; i++ {
		f := Fault{Kind: SEU, FF: i}
		u.Classes = append(u.Classes, Class{Rep: f, Members: []Fault{f}})
	}
	return u
}

// faultIndex maps a stuck-at fault back to its flat enumeration index.
func faultIndex(base []int, f Fault) int {
	b := base[f.LUT]
	switch f.Kind {
	case OutSA0:
		return b
	case OutSA1:
		return b + 1
	case PinSA0:
		return b + 2 + 2*f.Pin
	case PinSA1:
		return b + 3 + 2*f.Pin
	}
	panic("fault: no flat index for " + f.String())
}

// pinFaultTable returns the faulty truth table of the LUT when input
// pin p is stuck at v: T_f(x) = T(x with bit p forced to v).
func pinFaultTable(t truthtab.Table, p int, v bool) truthtab.Table {
	r := truthtab.New(t.NumVars)
	for i := 0; i < t.Size(); i++ {
		src := i &^ (1 << uint(p))
		if v {
			src |= 1 << uint(p)
		}
		r.SetBit(i, t.Bit(src))
	}
	return r
}

// forcesTo reports whether every input assignment where the faulty
// table differs from the good one produces output w — the condition for
// the pin fault's tests to detect the output stuck-at-w.
func forcesTo(good, faulty truthtab.Table, w bool) bool {
	for i := 0; i < good.Size(); i++ {
		if faulty.Bit(i) != good.Bit(i) && faulty.Bit(i) != w {
			return false
		}
	}
	return true
}

// tableKey is a collision-free string key over table contents.
func tableKey(t truthtab.Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", t.NumVars)
	for _, w := range t.Words {
		fmt.Fprintf(&b, "%016x", w)
	}
	return b.String()
}

// unionFind is a standard disjoint-set forest with size tracking.
type unionFind struct {
	parent []int
	sz     []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), sz: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.sz[i] = 1
	}
	return uf
}

func (uf *unionFind) find(i int) int {
	for uf.parent[i] != i {
		uf.parent[i] = uf.parent[uf.parent[i]]
		i = uf.parent[i]
	}
	return i
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	// Keep the smaller index as root so class order follows enumeration
	// order deterministically.
	if rb < ra {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.sz[ra] += uf.sz[rb]
}

func (uf *unionFind) size(i int) int { return uf.sz[uf.find(i)] }
