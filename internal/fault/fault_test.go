package fault

import (
	"math/rand"
	"reflect"
	"testing"

	"c2nn/internal/exec/plan"
	"c2nn/internal/lutmap"
	"c2nn/internal/netlist"
	"c2nn/internal/nn"
	"c2nn/internal/simengine"
	"c2nn/internal/synth"
	"c2nn/internal/truthtab"
)

var precisions = []simengine.Precision{simengine.Float32, simengine.Int32, simengine.BitPacked}

// classWith finds the class containing fault f.
func classWith(t *testing.T, u *Universe, f Fault) *Class {
	t.Helper()
	for ci := range u.Classes {
		for _, m := range u.Classes[ci].Members {
			if m == f {
				return &u.Classes[ci]
			}
		}
	}
	t.Fatalf("no class contains %s", f)
	return nil
}

func TestEnumerateAND2Collapse(t *testing.T) {
	// AND2: the three sa0 faults (output, both pins) share the Const0
	// faulty table and collapse; output sa1 is dominated by the pin sa1
	// faults; the two pin sa1 faults stay distinct.
	g := &lutmap.Graph{
		K: 2, NumPIs: 2,
		LUTs:    []lutmap.LUT{{Ins: []lutmap.NodeRef{lutmap.PIRef(0), lutmap.PIRef(1)}, Table: truthtab.FromBits(2, []bool{false, false, false, true})}},
		Outputs: []lutmap.NodeRef{0},
	}
	u := Enumerate(g, 0)
	if u.Raw != 6 {
		t.Fatalf("Raw = %d, want 6", u.Raw)
	}
	if len(u.Classes) != 4 {
		t.Fatalf("got %d classes, want 4: %+v", len(u.Classes), u.Classes)
	}
	sa0 := classWith(t, u, Fault{Kind: OutSA0})
	wantMembers := []Fault{{Kind: OutSA0}, {Kind: PinSA0, Pin: 0}, {Kind: PinSA0, Pin: 1}}
	if !reflect.DeepEqual(sa0.Members, wantMembers) {
		t.Errorf("sa0 class members = %v, want %v", sa0.Members, wantMembers)
	}
	if sa0.Status != Simulated || sa0.Rep != (Fault{Kind: OutSA0}) {
		t.Errorf("sa0 class: status %v rep %v", sa0.Status, sa0.Rep)
	}
	if c := classWith(t, u, Fault{Kind: OutSA1}); c.Status != Dominated {
		t.Errorf("out/sa1 status = %v, want dominated", c.Status)
	}
	for pin := 0; pin < 2; pin++ {
		c := classWith(t, u, Fault{Kind: PinSA1, Pin: pin})
		if len(c.Members) != 1 || c.Status != Simulated {
			t.Errorf("in%d/sa1 class = %+v, want its own simulated class", pin, c)
		}
	}
	sim, untest, dom, unmod := u.Counts()
	if sim != 3 || untest != 0 || dom != 1 || unmod != 0 {
		t.Errorf("counts = %d/%d/%d/%d, want 3/0/1/0", sim, untest, dom, unmod)
	}
	if ds := u.Lint(g); len(ds) != 0 {
		t.Errorf("lint on AND2 universe: %v", ds)
	}
}

func TestEnumerateXOR2NoCollapse(t *testing.T) {
	// XOR2: every single fault has a distinct faulty function and no
	// fault dominates another — six singleton simulated classes.
	g := &lutmap.Graph{
		K: 2, NumPIs: 2,
		LUTs:    []lutmap.LUT{{Ins: []lutmap.NodeRef{lutmap.PIRef(0), lutmap.PIRef(1)}, Table: truthtab.FromBits(2, []bool{false, true, true, false})}},
		Outputs: []lutmap.NodeRef{0},
	}
	u := Enumerate(g, 0)
	if u.Raw != 6 || len(u.Classes) != 6 {
		t.Fatalf("raw %d classes %d, want 6 and 6", u.Raw, len(u.Classes))
	}
	for ci := range u.Classes {
		c := &u.Classes[ci]
		if len(c.Members) != 1 || c.Status != Simulated {
			t.Errorf("class %d = %+v, want singleton simulated", ci, c)
		}
	}
	if ds := u.Lint(g); len(ds) != 0 {
		t.Errorf("lint on XOR2 universe: %v", ds)
	}
}

func TestStemBranchMerge(t *testing.T) {
	// LUT0 = AND(pi0, pi1) feeds only LUT1 = OR(lut0, pi2): the stem
	// output faults of LUT0 merge with the branch pin faults on LUT1's
	// pin 0.
	and := truthtab.FromBits(2, []bool{false, false, false, true})
	or := truthtab.FromBits(2, []bool{false, true, true, true})
	g := &lutmap.Graph{
		K: 2, NumPIs: 3,
		LUTs: []lutmap.LUT{
			{Ins: []lutmap.NodeRef{lutmap.PIRef(0), lutmap.PIRef(1)}, Table: and},
			{Ins: []lutmap.NodeRef{0, lutmap.PIRef(2)}, Table: or},
		},
		Outputs: []lutmap.NodeRef{1},
	}
	u := Enumerate(g, 0)
	for v := 0; v < 2; v++ {
		outKind, pinKind := OutSA0, PinSA0
		if v == 1 {
			outKind, pinKind = OutSA1, PinSA1
		}
		c := classWith(t, u, Fault{Kind: outKind, LUT: 0})
		found := false
		for _, m := range c.Members {
			if m == (Fault{Kind: pinKind, LUT: 1, Pin: 0}) {
				found = true
			}
		}
		if !found {
			t.Errorf("stem lut0/sa%d not merged with branch lut1.in0/sa%d: members %v", v, v, c.Members)
		}
	}
	if ds := u.Lint(g); len(ds) != 0 {
		t.Errorf("lint on stem/branch universe: %v", ds)
	}
}

func TestConstLUTStatuses(t *testing.T) {
	// A constant-0 LUT: every sa0 fault is untestable, and the sa1
	// output fault cannot be expressed as an input forcing → unmodeled.
	g := &lutmap.Graph{
		K: 1, NumPIs: 1,
		LUTs:    []lutmap.LUT{{Ins: []lutmap.NodeRef{lutmap.PIRef(0)}, Table: truthtab.Const(1, false)}},
		Outputs: []lutmap.NodeRef{0},
	}
	u := Enumerate(g, 0)
	if u.Raw != 4 {
		t.Fatalf("Raw = %d, want 4", u.Raw)
	}
	if c := classWith(t, u, Fault{Kind: OutSA0}); c.Status != Untestable || len(c.Members) != 3 {
		t.Errorf("const sa0 class = %+v, want 3-member untestable", c)
	}
	if c := classWith(t, u, Fault{Kind: OutSA1}); c.Status != Unmodeled {
		t.Errorf("const out/sa1 status = %v, want unmodeled", c.Status)
	}
	sim, untest, _, unmod := u.Counts()
	if sim != 0 || untest != 1 || unmod != 1 {
		t.Errorf("counts sim=%d untest=%d unmod=%d, want 0/1/1", sim, untest, unmod)
	}
	// An all-untestable universe must warn FT004.
	ds := u.Lint(g)
	warned := false
	for _, d := range ds {
		if d.Rule == RuleEmptyUniverse.ID {
			warned = true
		}
	}
	if !warned {
		t.Errorf("expected FT004 on empty universe, got %v", ds)
	}
}

// compile elaborates Verilog, maps it at K=4 and builds a merged model.
func compile(t *testing.T, top, src string) (*netlist.Netlist, *lutmap.Mapping, *nn.Model) {
	t.Helper()
	nl, err := synth.ElaborateSource(top, map[string]string{top + ".v": src})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	m, err := lutmap.MapNetlist(nl, lutmap.Options{K: 4})
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	model, err := nn.Build(nl, m, nn.BuildOptions{Merge: true, L: 4})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return nl, m, model
}

// evalFaulty evaluates the graph with one fault injected, returning the
// values in g.Outputs order — the injection oracle.
func evalFaulty(g *lutmap.Graph, pis []bool, f Fault) []bool {
	vals := make([]bool, len(g.LUTs))
	ref := func(r lutmap.NodeRef) bool {
		if r.IsPI() {
			return pis[r.PI()]
		}
		return vals[r.LUT()]
	}
	for u := range g.LUTs {
		idx := 0
		for p, in := range g.LUTs[u].Ins {
			b := ref(in)
			if (f.Kind == PinSA0 || f.Kind == PinSA1) && f.LUT == u && f.Pin == p {
				b = f.StuckVal()
			}
			if b {
				idx |= 1 << uint(p)
			}
		}
		v := g.LUTs[u].Table.Bit(idx)
		if (f.Kind == OutSA0 || f.Kind == OutSA1) && f.LUT == u {
			v = f.StuckVal()
		}
		vals[u] = v
	}
	out := make([]bool, len(g.Outputs))
	for i, r := range g.Outputs {
		out[i] = ref(r)
	}
	return out
}

// TestInjectionMatchesFaultyEval is the core correctness check: for a
// combinational circuit, every simulated fault class injected through
// the overlay must make the engine's faulty lane reproduce a direct
// evaluation of the faulted LUT graph — on all three backends.
func TestInjectionMatchesFaultyEval(t *testing.T) {
	const src = `module fcomb(input [3:0] a, input [3:0] b, output [3:0] x, output [3:0] y);
  wire [3:0] tt;
  assign tt = a & b;
  assign x = tt ^ (a | b);
  assign y = tt | (a ^ b);
endmodule
`
	nl, m, model := compile(t, "fcomb", src)
	g := m.Graph
	u := Enumerate(g, 0)
	sims := u.SimulatedClasses()
	if len(sims) == 0 {
		t.Fatal("no simulated classes")
	}

	// Output port bit → graph output index, as bindPorts resolves it.
	outIdx := make(map[netlist.NetID]int)
	for j, net := range m.OutputNets {
		if _, dup := outIdx[net]; !dup {
			outIdx[net] = j
		}
	}

	const batch = 8
	for _, prec := range precisions {
		eng, err := simengine.New(model, simengine.Options{
			Batch: batch, Precision: prec, KeepAllActivations: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		rng := rand.New(rand.NewSource(7))
		for lo := 0; lo < len(sims); lo += batch - 1 {
			hi := lo + batch - 1
			if hi > len(sims) {
				hi = len(sims)
			}
			chunk := sims[lo:hi]
			ov, err := NewOverlay(model, g, -1)
			if err != nil {
				t.Fatal(err)
			}
			for i, ci := range chunk {
				if err := ov.AddFault(u.Classes[ci].Rep, i+1); err != nil {
					t.Fatal(err)
				}
			}
			eng.Reset()
			if err := eng.WithFaults(ov); err != nil {
				t.Fatal(err)
			}
			for vec := 0; vec < 8; vec++ {
				pis := make([]bool, g.NumPIs)
				for _, in := range model.Inputs {
					v := rng.Uint64() & (1<<uint(len(in.Units)) - 1)
					if err := eng.SetInputUniform(in.Name, v); err != nil {
						t.Fatal(err)
					}
					for i, unit := range in.Units {
						pis[int(unit)-1] = v>>uint(i)&1 == 1
					}
				}
				eng.Forward()
				for lane := 0; lane < 1+len(chunk); lane++ {
					f := Fault{Kind: SEU, FF: -1} // no-op fault for the golden lane
					if lane > 0 {
						f = u.Classes[chunk[lane-1]].Rep
					}
					want := evalFaulty(g, pis, f)
					for _, out := range nl.Outputs {
						got, err := eng.GetOutputBits(out.Name, lane)
						if err != nil {
							t.Fatal(err)
						}
						for i, bit := range got {
							if w := want[outIdx[out.Bits[i]]]; bit != w {
								t.Fatalf("%v lane %d fault %s vec %d: %s[%d] = %v, want %v",
									prec, lane, f, vec, out.Name, i, bit, w)
							}
						}
					}
				}
			}
			if err := eng.WithFaults(nil); err != nil {
				t.Fatal(err)
			}
		}
		eng.Close()
	}
}

const counterSrc = `module ctr(input clk, rst, en, output [7:0] q);
  reg [7:0] cnt;
  always @(posedge clk) begin
    if (rst) cnt <= 8'd0;
    else if (en) cnt <= cnt + 8'd1;
  end
  assign q = cnt;
endmodule
`

// TestGradeSequential grades a sequential counter with random stimuli
// and checks the report arithmetic plus backend-identical detection.
func TestGradeSequential(t *testing.T) {
	_, m, model := compile(t, "ctr", counterSrc)
	u := Enumerate(m.Graph, len(model.Feedback))
	if len(model.Feedback) == 0 {
		t.Fatal("counter has no flip-flops")
	}
	if ds := u.Lint(m.Graph); len(ds) != 0 {
		t.Fatalf("universe lint: %v", ds)
	}

	var detected [][]string
	for _, prec := range precisions {
		rep, err := Grade(model, m.Graph, u, nil, Config{
			Precision: prec, Batch: 16, RandomCycles: 64, Seed: 11,
		})
		if err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		if rep.Detected+rep.Undetected != rep.Simulated {
			t.Errorf("%v: detected %d + undetected %d != simulated %d",
				prec, rep.Detected, rep.Undetected, rep.Simulated)
		}
		if rep.Detected == 0 || rep.Coverage <= 0 {
			t.Errorf("%v: nothing detected (coverage %.1f%%)", prec, rep.Coverage)
		}
		if rep.RawFaults != u.Raw || rep.Classes != len(u.Classes) {
			t.Errorf("%v: universe counts drifted: %+v", prec, rep)
		}
		detected = append(detected, rep.DetectedFaults)
	}
	for i := 1; i < len(detected); i++ {
		if !reflect.DeepEqual(detected[0], detected[i]) {
			t.Errorf("detected sets differ between %v and %v:\n%v\n%v",
				precisions[0], precisions[i], detected[0], detected[i])
		}
	}
}

// TestGradeGoldenLaneUnaffected runs a faulted engine and a fault-free
// engine over the same stimuli and requires identical golden outputs.
func TestGradeGoldenLaneUnaffected(t *testing.T) {
	_, m, model := compile(t, "ctr", counterSrc)
	u := Enumerate(m.Graph, len(model.Feedback))
	sims := u.SimulatedClasses()

	faulty, err := simengine.New(model, simengine.Options{Batch: 8, KeepAllActivations: true})
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()
	clean, err := simengine.New(model, simengine.Options{Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()

	ov, err := NewOverlay(model, m.Graph, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7 && i < len(sims); i++ {
		if err := ov.AddFault(u.Classes[sims[i]].Rep, i+1); err != nil {
			t.Fatal(err)
		}
	}
	faulty.Reset()
	clean.Reset()
	if err := faulty.WithFaults(ov); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	for cyc := 0; cyc < 32; cyc++ {
		for _, in := range model.Inputs {
			v := rng.Uint64() & (1<<uint(len(in.Units)) - 1)
			if err := faulty.SetInputUniform(in.Name, v); err != nil {
				t.Fatal(err)
			}
			if err := clean.SetInputUniform(in.Name, v); err != nil {
				t.Fatal(err)
			}
		}
		faulty.Step()
		clean.Step()
		for _, out := range model.Outputs {
			a, err := faulty.GetOutputBits(out.Name, 0)
			if err != nil {
				t.Fatal(err)
			}
			b, err := clean.GetOutputBits(out.Name, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("cycle %d: golden lane drifted on %s: %v vs %v", cyc, out.Name, a, b)
			}
		}
	}
}

// TestOverlayLintFlags checks FT001/FT002 on a deliberately bad overlay
// and a clean pass on a good one.
func TestOverlayLintFlags(t *testing.T) {
	_, m, model := compile(t, "ctr", counterSrc)
	u := Enumerate(m.Graph, len(model.Feedback))
	sims := u.SimulatedClasses()
	if len(sims) < 2 {
		t.Fatal("need at least two simulated classes")
	}
	fp, err := plan.CompileOpts(model, plan.Options{DisableArenaReuse: true})
	if err != nil {
		t.Fatal(err)
	}

	good, err := NewOverlay(model, m.Graph, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.AddFault(u.Classes[sims[0]].Rep, 1); err != nil {
		t.Fatal(err)
	}
	if ds := good.Lint(fp, 8); len(ds) != 0 {
		t.Errorf("clean overlay flagged: %v", ds)
	}

	bad, err := NewOverlay(model, m.Graph, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.AddFault(u.Classes[sims[0]].Rep, 0); err != nil { // golden lane
		t.Fatal(err)
	}
	if err := bad.AddFault(u.Classes[sims[1]].Rep, 99); err != nil { // beyond batch
		t.Fatal(err)
	}
	var ft001, ft002 bool
	for _, d := range bad.Lint(fp, 8) {
		switch d.Rule {
		case RuleOverlayTarget.ID:
			ft001 = true
		case RuleGoldenLane.ID:
			ft002 = true
		}
	}
	if !ft001 || !ft002 {
		t.Errorf("bad overlay: FT001=%v FT002=%v, want both", ft001, ft002)
	}
}

// TestWithFaultsNeedsKeepAll ensures the arena-reuse guard holds.
func TestWithFaultsNeedsKeepAll(t *testing.T) {
	_, m, model := compile(t, "ctr", counterSrc)
	eng, err := simengine.New(model, simengine.Options{Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ov, err := NewOverlay(model, m.Graph, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.WithFaults(ov); err == nil {
		t.Fatal("WithFaults accepted an engine without KeepAllActivations")
	}
}
