package fault

import (
	"fmt"
	"math/rand"
	"time"

	"c2nn/internal/lutmap"
	"c2nn/internal/nn"
	"c2nn/internal/obs"
	"c2nn/internal/simengine"
	"c2nn/internal/testbench"
)

// Config tunes a coverage-grading run.
type Config struct {
	// Precision selects the execution substrate. The bit-packed backend
	// grades 63 faulty machines per uint64 word.
	Precision simengine.Precision
	// Batch is the engine batch size: lane 0 is the golden machine,
	// lanes 1..Batch-1 carry one fault class each per round. Default 64.
	Batch int
	// Workers is the engine worker-pool width (0 = GOMAXPROCS).
	Workers int
	// SEUForward is the forward-pass index on which SEU faults flip
	// (per round; negative defaults to 1).
	SEUForward int
	// RandomCycles appends this many random-stimulus cycles after the
	// script (or forms the whole run when no script is given). The
	// stimuli are identical in every round and lane.
	RandomCycles int
	// Seed seeds the random stimuli.
	Seed int64
	// Activity enables activity-driven execution on the grading
	// engine. Overlay passes always run every layer in full (skipping
	// is scoped to overlay-free forwards) and installing or removing
	// an overlay invalidates the dirtiness state, so detected-fault
	// sets are identical with and without it — the interaction tests
	// enforce that.
	Activity bool
	// Trace, when non-nil, records a "fault.grade" root span with one
	// "round" child per batch pass (plus the engine's forward/kernel
	// spans underneath) and a "fault.forces" counter of overlay unit
	// writes. Nil disables recording.
	Trace *obs.Trace
}

// Report is the fault-coverage result of one grading run.
type Report struct {
	Circuit string `json:"circuit"`
	L       int    `json:"l"`
	Backend string `json:"backend"`
	Batch   int    `json:"batch"`

	// RawFaults counts enumerated faults before collapsing; Classes
	// counts equivalence classes after collapsing.
	RawFaults  int `json:"raw_faults"`
	Classes    int `json:"classes"`
	Untestable int `json:"untestable"`
	Dominated  int `json:"dominated"`
	Unmodeled  int `json:"unmodeled"`
	Simulated  int `json:"simulated"`

	Detected   int `json:"detected"`
	Undetected int `json:"undetected"`
	// Coverage is Detected / Simulated in percent.
	Coverage float64 `json:"coverage"`

	// Rounds is the number of batch passes; Cycles the clock cycles
	// driven per round.
	Rounds int `json:"rounds"`
	Cycles int `json:"cycles"`

	ElapsedMS float64 `json:"elapsed_ms"`
	// FaultsPerSec is simulated fault classes graded per second.
	FaultsPerSec float64 `json:"faults_per_sec"`

	// DetectedFaults and UndetectedFaults name the class
	// representatives, in enumeration order.
	DetectedFaults   []string `json:"detected_faults"`
	UndetectedFaults []string `json:"undetected_faults"`
}

// Grade enumerates nothing itself: it grades the simulated classes of
// an already-collapsed universe against the model, replaying the given
// testbench script (may be nil) and/or random stimuli in every round,
// and diffing every faulty lane against the golden lane 0 at each
// expectation (script mode) or at every output port every cycle
// (random mode).
func Grade(model *nn.Model, g *lutmap.Graph, u *Universe, script *testbench.Script, cfg Config) (*Report, error) {
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Batch < 2 {
		return nil, fmt.Errorf("fault: batch %d leaves no fault lanes (lane 0 is golden)", cfg.Batch)
	}
	if script == nil && cfg.RandomCycles <= 0 {
		return nil, fmt.Errorf("fault: nothing to replay (no script, no random cycles)")
	}

	eng, err := simengine.New(model, simengine.Options{
		Batch:              cfg.Batch,
		Workers:            cfg.Workers,
		Precision:          cfg.Precision,
		KeepAllActivations: true,
		Activity:           cfg.Activity,
		Trace:              cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	sims := u.SimulatedClasses()
	gsp := cfg.Trace.Begin("fault.grade").
		SetStr("circuit", model.CircuitName).
		SetStr("backend", cfg.Precision.String()).
		SetInt("classes", int64(len(u.Classes))).
		SetInt("simulated", int64(len(sims)))
	defer gsp.End()
	detected := make([]bool, len(u.Classes))
	lanesPerRound := cfg.Batch - 1
	start := time.Now()
	rounds := 0
	cyclesPerRound := 0

	for lo := 0; lo < len(sims); lo += lanesPerRound {
		hi := lo + lanesPerRound
		if hi > len(sims) {
			hi = len(sims)
		}
		chunk := sims[lo:hi]
		rounds++
		rsp := cfg.Trace.Begin("round").SetInt("lanes", int64(len(chunk)))

		ov, err := NewOverlay(model, g, cfg.SEUForward)
		if err != nil {
			return nil, err
		}
		ov.Instrument(cfg.Trace)
		for i, ci := range chunk {
			if err := ov.AddFault(u.Classes[ci].Rep, i+1); err != nil {
				return nil, err
			}
		}
		eng.Reset()
		if err := eng.WithFaults(ov); err != nil {
			return nil, err
		}

		// diff compares every faulty lane of one output port against
		// the golden lane, marking newly detected classes.
		diff := func(port string) error {
			golden, err := eng.GetOutputBits(port, 0)
			if err != nil {
				return err
			}
			for i, ci := range chunk {
				if detected[ci] {
					continue
				}
				got, err := eng.GetOutputBits(port, i+1)
				if err != nil {
					return err
				}
				for b := range golden {
					if got[b] != golden[b] {
						detected[ci] = true
						break
					}
				}
			}
			return nil
		}

		cycles := 0
		if script != nil {
			res, err := script.RunOpts(eng, testbench.RunOptions{
				Uniform:  true,
				Observer: func(line int, port string) error { return diff(port) },
			})
			if err != nil {
				return nil, fmt.Errorf("fault: replaying script: %w", err)
			}
			cycles += res.Steps
		}
		if cfg.RandomCycles > 0 {
			// Every round replays the same random stimuli so all fault
			// classes are graded against one stimulus set.
			rng := rand.New(rand.NewSource(cfg.Seed))
			bits := make([]bool, 0, 128)
			for cyc := 0; cyc < cfg.RandomCycles; cyc++ {
				for _, in := range model.Inputs {
					w := len(in.Units)
					if w > 64 {
						bits = bits[:0]
						for i := 0; i < w; i++ {
							bits = append(bits, rng.Intn(2) == 1)
						}
						for lane := 0; lane < cfg.Batch; lane++ {
							if err := eng.SetInputBits(in.Name, lane, bits); err != nil {
								return nil, err
							}
						}
						continue
					}
					v := rng.Uint64()
					if w < 64 {
						v &= 1<<uint(w) - 1
					}
					if err := eng.SetInputUniform(in.Name, v); err != nil {
						return nil, err
					}
				}
				eng.Forward()
				for _, out := range model.Outputs {
					if err := diff(out.Name); err != nil {
						return nil, err
					}
				}
				eng.LatchFeedback()
				cycles++
			}
		}
		if err := eng.WithFaults(nil); err != nil {
			return nil, err
		}
		cyclesPerRound = cycles
		rsp.SetInt("cycles", int64(cycles)).End()
	}
	elapsed := time.Since(start)

	simulated, untestable, dominated, unmodeled := u.Counts()
	rep := &Report{
		Circuit:    model.CircuitName,
		L:          model.L,
		Backend:    cfg.Precision.String(),
		Batch:      cfg.Batch,
		RawFaults:  u.Raw,
		Classes:    len(u.Classes),
		Untestable: untestable,
		Dominated:  dominated,
		Unmodeled:  unmodeled,
		Simulated:  simulated,
		Rounds:     rounds,
		Cycles:     cyclesPerRound,
		ElapsedMS:  float64(elapsed.Microseconds()) / 1e3,
	}
	for _, ci := range sims {
		name := u.Classes[ci].Rep.String()
		if detected[ci] {
			rep.Detected++
			rep.DetectedFaults = append(rep.DetectedFaults, name)
		} else {
			rep.Undetected++
			rep.UndetectedFaults = append(rep.UndetectedFaults, name)
		}
	}
	if rep.Simulated > 0 {
		rep.Coverage = 100 * float64(rep.Detected) / float64(rep.Simulated)
	}
	if elapsed > 0 {
		rep.FaultsPerSec = float64(rep.Simulated) / elapsed.Seconds()
	}
	return rep, nil
}

// String renders the report as the two-line text summary of the CLI.
func (r *Report) String() string {
	return fmt.Sprintf(
		"%s (L=%d, %s): %d raw faults -> %d classes (%d simulated, %d untestable, %d dominated, %d unmodeled)\n"+
			"detected %d/%d (%.1f%% coverage) in %d round(s) x %d cycle(s), %.3g faults/s\n",
		r.Circuit, r.L, r.Backend, r.RawFaults, r.Classes,
		r.Simulated, r.Untestable, r.Dominated, r.Unmodeled,
		r.Detected, r.Simulated, r.Coverage, r.Rounds, r.Cycles, r.FaultsPerSec)
}
