package fault

import (
	"fmt"

	"c2nn/internal/lutmap"
	"c2nn/internal/nn"
	"c2nn/internal/obs"
	"c2nn/internal/simengine"
)

// forceOp forces one LUT's term neurons to a fixed input assignment x
// in one lane (static output stuck-at forcing).
type forceOp struct {
	lane int
	lut  int32
	x    uint32
}

// pinOp forces one LUT to behave as if input pin `pin` were stuck at v
// in one lane: the actual pin values are read back at hook time, the
// faulty pin is overridden, and the term neurons are rewritten to the
// resulting assignment.
type pinOp struct {
	lane int
	lut  int32
	pin  int
	v    bool
}

// seuOp flips one flip-flop Q unit in one lane, once per run.
type seuOp struct {
	lane int
	unit int32
}

// Overlay is a compiled per-lane fault configuration implementing
// simengine.Overlay: each batch lane carries at most one fault, lane 0
// stays golden. Install with Engine.WithFaults on an engine created
// with KeepAllActivations.
type Overlay struct {
	model *nn.Model
	g     *lutmap.Graph
	// seuAt is the forward-pass index (0-based, counted per overlay)
	// at which SEU flips fire.
	seuAt int
	pass  int

	// forces and pins are keyed by the plan layer after which they
	// apply (the layer producing the faulted LUT's term neurons).
	forces map[int][]forceOp
	pins   map[int][]pinOp
	seus   []seuOp

	// maxLane tracks the highest lane any op touches.
	maxLane int

	// forces counts unit writes the overlay performs (term rewrites and
	// SEU flips); nil when uninstrumented.
	forceCtr *obs.Counter
}

// Instrument attaches the "fault.forces" counter of the given sink to
// the overlay, counting every unit write it performs (term-neuron
// rewrites and SEU flips). A nil trace detaches.
func (o *Overlay) Instrument(tr *obs.Trace) {
	o.forceCtr = tr.Counter("fault.forces")
}

// NewOverlay prepares an empty overlay for a model built from graph g.
// The model must carry build provenance (models loaded from .c2nn files
// do not). seuAt selects the forward pass on which SEU faults flip;
// values below zero default to 1, letting the first cycle establish
// machine state before the upset.
func NewOverlay(model *nn.Model, g *lutmap.Graph, seuAt int) (*Overlay, error) {
	if model.Trace == nil {
		return nil, fmt.Errorf("fault: model %q has no build trace (loaded from file?); rebuild with nn.Build", model.CircuitName)
	}
	if len(model.Trace.LUTs) != len(g.LUTs) {
		return nil, fmt.Errorf("fault: trace covers %d LUTs, graph has %d", len(model.Trace.LUTs), len(g.LUTs))
	}
	if seuAt < 0 {
		seuAt = 1
	}
	return &Overlay{
		model:  model,
		g:      g,
		seuAt:  seuAt,
		forces: make(map[int][]forceOp),
		pins:   make(map[int][]pinOp),
	}, nil
}

// hookLayer returns the plan layer after which a LUT's term neurons are
// valid and may be rewritten.
func (o *Overlay) hookLayer(lut int) (int, error) {
	tr := o.model.Trace
	lv := tr.LUTs[lut].Level
	if int(lv) >= len(tr.LayerOfLevel) || tr.LayerOfLevel[lv] < 0 {
		return 0, fmt.Errorf("fault: lut %d level %d has no producing layer", lut, lv)
	}
	return int(tr.LayerOfLevel[lv]), nil
}

// AddFault compiles one fault onto one batch lane. Lane 0 is reserved
// for the golden machine by the coverage driver; AddFault itself only
// validates the fault, so the FT lint rules can inspect malformed
// overlays.
func (o *Overlay) AddFault(f Fault, lane int) error {
	if lane < 0 {
		return fmt.Errorf("fault: negative lane %d", lane)
	}
	if lane > o.maxLane {
		o.maxLane = lane
	}
	switch f.Kind {
	case OutSA0, OutSA1:
		if f.LUT < 0 || f.LUT >= len(o.g.LUTs) {
			return fmt.Errorf("fault: %s: no such LUT", f)
		}
		t := o.g.LUTs[f.LUT].Table
		x := -1
		for i := 0; i < t.Size(); i++ {
			if t.Bit(i) == f.StuckVal() {
				x = i
				break
			}
		}
		if x < 0 {
			return fmt.Errorf("fault: %s is unmodelable (constant LUT never outputs %v)", f, f.StuckVal())
		}
		li, err := o.hookLayer(f.LUT)
		if err != nil {
			return err
		}
		o.forces[li] = append(o.forces[li], forceOp{lane: lane, lut: int32(f.LUT), x: uint32(x)})
	case PinSA0, PinSA1:
		if f.LUT < 0 || f.LUT >= len(o.g.LUTs) {
			return fmt.Errorf("fault: %s: no such LUT", f)
		}
		if f.Pin < 0 || f.Pin >= len(o.g.LUTs[f.LUT].Ins) {
			return fmt.Errorf("fault: %s: no such pin", f)
		}
		li, err := o.hookLayer(f.LUT)
		if err != nil {
			return err
		}
		o.pins[li] = append(o.pins[li], pinOp{lane: lane, lut: int32(f.LUT), pin: f.Pin, v: f.StuckVal()})
	case SEU:
		if f.FF < 0 || f.FF >= len(o.model.Feedback) {
			return fmt.Errorf("fault: %s: no such flip-flop", f)
		}
		o.seus = append(o.seus, seuOp{lane: lane, unit: o.model.Feedback[f.FF].ToPI})
	default:
		return fmt.Errorf("fault: unknown kind %d", f.Kind)
	}
	return nil
}

// Faults returns the number of compiled fault ops.
func (o *Overlay) Faults() int {
	n := len(o.seus)
	for _, ops := range o.forces {
		n += len(ops)
	}
	for _, ops := range o.pins {
		n += len(ops)
	}
	return n
}

// ResetPass rewinds the forward-pass counter, re-arming SEU flips.
func (o *Overlay) ResetPass() { o.pass = 0 }

// Apply implements simengine.Overlay: layer -1 fires SEU flips on the
// armed pass; after each plan layer the stuck-at forcings of LUTs whose
// term neurons that layer produced are applied per lane.
func (o *Overlay) Apply(e *simengine.Engine, layer int) {
	if layer < 0 {
		if o.pass == o.seuAt {
			for _, s := range o.seus {
				e.PokeUnit(s.unit, s.lane, !e.PeekUnit(s.unit, s.lane))
			}
			o.forceCtr.Add(int64(len(o.seus)))
		}
		o.pass++
		return
	}
	tr := o.model.Trace
	for _, op := range o.forces[layer] {
		o.forceTerms(e, op.lane, &tr.LUTs[op.lut], op.x)
	}
	for _, op := range o.pins[layer] {
		x := o.readPins(e, op.lane, int(op.lut))
		if op.v {
			x |= 1 << uint(op.pin)
		} else {
			x &^= 1 << uint(op.pin)
		}
		o.forceTerms(e, op.lane, &tr.LUTs[op.lut], x)
	}
}

// forceTerms rewrites a LUT's term neurons in one lane so every reader
// of the LUT's value sees exactly LUT(x): term i fires iff all pins of
// its variable set are 1 under assignment x.
func (o *Overlay) forceTerms(e *simengine.Engine, lane int, lt *nn.LUTTrace, x uint32) {
	for i, tu := range lt.TermUnits {
		m := lt.TermMasks[i]
		e.PokeUnit(tu, lane, x&m == m)
	}
	o.forceCtr.Add(int64(len(lt.TermUnits)))
}

// readPins reconstructs the actual input assignment of a LUT in one
// lane from the current activations: PI pins read their unit directly,
// LUT pins evaluate the driver's exact linear value form.
func (o *Overlay) readPins(e *simengine.Engine, lane int, lut int) uint32 {
	var x uint32
	for p, in := range o.g.LUTs[lut].Ins {
		if o.refValue(e, lane, in) {
			x |= 1 << uint(p)
		}
	}
	return x
}

// refValue evaluates one computation-graph reference in one lane.
func (o *Overlay) refValue(e *simengine.Engine, lane int, ref lutmap.NodeRef) bool {
	if ref.IsPI() {
		return e.PeekUnit(nn.PIUnit(ref.PI()), lane)
	}
	lt := &o.model.Trace.LUTs[ref.LUT()]
	v := lt.Cst
	for i, u := range lt.VUnits {
		if e.PeekUnit(u, lane) {
			v += lt.VCoefs[i]
		}
	}
	return v != 0
}
