package poly

import "math/bits"

// This file implements the polynomial library for known functions that
// the paper proposes as future work (§V): for macro operations the
// multi-linear polynomial is written down directly instead of being
// recovered from an exhaustively enumerated truth table, which lifts the
// exponential-in-L cost for exactly the functions whose polynomials are
// simple. The §V example: a 9-input AND is the single monomial
// x1·x2·…·x9, no matter what LUT size the mapper was run with.

// AndPoly returns the polynomial of the n-input AND: one monomial over
// all variables.
func AndPoly(n int) Poly {
	if n == 0 {
		return Poly{NumVars: 0, Terms: []Term{{Mask: 0, Coeff: 1}}}
	}
	return Poly{NumVars: n, Terms: []Term{{Mask: uint32(1<<uint(n)) - 1, Coeff: 1}}}
}

// OrPoly returns the polynomial of the n-input OR via
// inclusion-exclusion: Σ_{∅≠S} (−1)^{|S|+1} Π_S x.
func OrPoly(n int) Poly {
	p := Poly{NumVars: n}
	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		c := int32(1)
		if bits.OnesCount32(mask)%2 == 0 {
			c = -1
		}
		p.Terms = append(p.Terms, Term{Mask: mask, Coeff: c})
	}
	return p
}

// XorPoly returns the polynomial of the n-input XOR: the coefficient of
// a size-k monomial is (−2)^{k−1}.
func XorPoly(n int) Poly {
	p := Poly{NumVars: n}
	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		k := bits.OnesCount32(mask)
		c := int32(1)
		for i := 1; i < k; i++ {
			c *= -2
		}
		p.Terms = append(p.Terms, Term{Mask: mask, Coeff: c})
	}
	return p
}

// NandPoly, NorPoly and XnorPoly are the complements (1 − p).
func NandPoly(n int) Poly { return AndPoly(n).Negate() }

// NorPoly returns the polynomial of the n-input NOR.
func NorPoly(n int) Poly { return OrPoly(n).Negate() }

// XnorPoly returns the polynomial of the n-input XNOR.
func XnorPoly(n int) Poly { return XorPoly(n).Negate() }

// MuxPoly returns the polynomial of the 2:1 multiplexer over variables
// (sel, a, b) = (x0, x1, x2), computing sel ? b : a — that is
// a + sel·b − sel·a.
func MuxPoly() Poly {
	return Poly{NumVars: 3, Terms: []Term{
		{Mask: 0b010, Coeff: 1},  // a
		{Mask: 0b011, Coeff: -1}, // -sel·a
		{Mask: 0b101, Coeff: 1},  // +sel·b
	}}
}

// MajPoly returns the polynomial of the 3-input majority function
// MAJ(x,y,z) = xy + xz + yz − 2xyz.
func MajPoly() Poly {
	return Poly{NumVars: 3, Terms: []Term{
		{Mask: 0b011, Coeff: 1},
		{Mask: 0b101, Coeff: 1},
		{Mask: 0b110, Coeff: 1},
		{Mask: 0b111, Coeff: -2},
	}}
}
