package poly

import (
	"testing"

	"c2nn/internal/truthtab"
)

// Each library polynomial must match the table-derived polynomial
// exactly, term for term.
func TestKnownPolynomialsMatchTables(t *testing.T) {
	for n := 1; n <= 10; n++ {
		andTab := truthtab.Const(n, true)
		orTab := truthtab.Const(n, false)
		xorTab := truthtab.Const(n, false)
		for v := 0; v < n; v++ {
			andTab = andTab.And(truthtab.Var(n, v))
			orTab = orTab.Or(truthtab.Var(n, v))
			xorTab = xorTab.Xor(truthtab.Var(n, v))
		}
		cases := []struct {
			name string
			got  Poly
			want truthtab.Table
		}{
			{"AND", AndPoly(n), andTab},
			{"OR", OrPoly(n), orTab},
			{"XOR", XorPoly(n), xorTab},
			{"NAND", NandPoly(n), andTab.Not()},
			{"NOR", NorPoly(n), orTab.Not()},
			{"XNOR", XnorPoly(n), xorTab.Not()},
		}
		for _, c := range cases {
			ref := FromTable(c.want)
			if !equalPoly(c.got, ref) {
				t.Errorf("%s(%d): library %v != table %v", c.name, n, c.got, ref)
			}
		}
	}
}

func TestMuxMajPolys(t *testing.T) {
	// MUX over (sel, a, b).
	muxTab := truthtab.Mux(truthtab.Var(3, 0), truthtab.Var(3, 1), truthtab.Var(3, 2))
	if !equalPoly(MuxPoly(), FromTable(muxTab)) {
		t.Errorf("MUX: %v != %v", MuxPoly(), FromTable(muxTab))
	}
	// MAJ(x,y,z).
	x, y, z := truthtab.Var(3, 0), truthtab.Var(3, 1), truthtab.Var(3, 2)
	majTab := x.And(y).Or(x.And(z)).Or(y.And(z))
	if !equalPoly(MajPoly(), FromTable(majTab)) {
		t.Errorf("MAJ: %v != %v", MajPoly(), FromTable(majTab))
	}
}

// The §V headline example: the 9-input AND is one monomial — sparsity
// maximal, degree 9 — without ever materialising a 512-row table.
func TestAnd9IsOneMonomial(t *testing.T) {
	p := AndPoly(9)
	if p.NumTerms() != 1 || p.Degree() != 9 {
		t.Fatalf("AND9 = %v", p)
	}
}

// Wide library polynomials stay usable far beyond table-friendly sizes:
// AndPoly(24) is trivially constructed; a table would need 16M rows.
func TestWideAndCheap(t *testing.T) {
	p := AndPoly(24)
	if p.NumTerms() != 1 {
		t.Fatal("wide AND not one monomial")
	}
	if p.Eval(1<<24-1) != 1 || p.Eval(1<<23) != 0 {
		t.Fatal("wide AND evaluates wrong")
	}
}
