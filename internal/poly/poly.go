// Package poly implements the multi-linear polynomial representation of
// Boolean functions (paper Eq. 1):
//
//	f(x_1,...,x_n) = Σ_{S ⊆ {1..n}} w_S · Π_{s∈S} x_s
//
// with integer coefficients w_S. Two converters from truth tables are
// provided:
//
//   - FromTable: the paper's Algorithm 1, a divide-and-conquer
//     coefficient transform running in O(L·2^L) operations;
//   - FromTableDNF: the naive route through the Sum-of-Products form,
//     expanding each minterm's product of literals, in O(2^L · 2^L)
//     operations — the blue baseline of Fig. 4.
//
// Polynomials of Boolean functions over binary inputs are exact: Eval
// returns 0 or 1 for every assignment, which is what lets the neural
// network drop bias and threshold on output neurons (§III-B3).
package poly

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"c2nn/internal/truthtab"
)

// Term is one monomial: Coeff · Π_{i ∈ Mask} x_i.
type Term struct {
	Mask  uint32
	Coeff int32
}

// Poly is a multi-linear polynomial in NumVars variables with integer
// coefficients, stored sparsely with terms ordered by ascending mask.
type Poly struct {
	NumVars int
	Terms   []Term
}

// FromTable converts a truth table to its multi-linear polynomial with
// the divide-and-conquer transform of Algorithm 1. The recursion splits
// the table on the top variable: [w_left, w_right - w_left].
func FromTable(t truthtab.Table) Poly {
	n := t.NumVars
	coeffs := make([]int32, t.Size())
	for i := range coeffs {
		if t.Bit(i) {
			coeffs[i] = 1
		}
	}
	lutToPoly(coeffs)
	return fromDense(n, coeffs)
}

// lutToPoly is Algorithm 1 operating in place: the value representation
// y becomes the coefficient representation w. The merging step of the
// two half-size sub-problems is w = [w_left, w_right − w_left].
func lutToPoly(y []int32) {
	if len(y) <= 1 {
		return // base case: a 0-variable table is its own coefficient
	}
	half := len(y) / 2
	left, right := y[:half], y[half:]
	lutToPoly(left)  // first sub-problem
	lutToPoly(right) // second sub-problem
	for i := range right {
		right[i] -= left[i] // merging
	}
}

// FromTableIterative is the loop form of Algorithm 1 (identical output,
// no recursion); it exists for the compile-time ablation benchmark.
func FromTableIterative(t truthtab.Table) Poly {
	n := t.NumVars
	coeffs := make([]int32, t.Size())
	for i := range coeffs {
		if t.Bit(i) {
			coeffs[i] = 1
		}
	}
	for v := 0; v < n; v++ {
		block := 1 << uint(v)
		for base := 0; base < len(coeffs); base += block << 1 {
			for i := 0; i < block; i++ {
				coeffs[base+block+i] -= coeffs[base+i]
			}
		}
	}
	return fromDense(n, coeffs)
}

// FromTableDNF converts via the Sum-of-Products route (Fig. 4 baseline):
// every satisfying row contributes the expansion of its minterm
// Π set-bits x_i · Π clear-bits (1−x_j), which costs up to 2^L terms per
// row.
func FromTableDNF(t truthtab.Table) Poly {
	n := t.NumVars
	coeffs := make([]int64, t.Size())
	full := uint32(t.Size() - 1)
	for row := 0; row < t.Size(); row++ {
		if !t.Bit(row) {
			continue
		}
		pos := uint32(row)
		neg := full &^ pos
		// Expand Π_{j∈neg}(1 - x_j): subset sum with alternating sign.
		for sub := neg; ; sub = (sub - 1) & neg {
			sign := int64(1)
			if bits.OnesCount32(sub)%2 == 1 {
				sign = -1
			}
			coeffs[pos|sub] += sign
			if sub == 0 {
				break
			}
		}
	}
	c32 := make([]int32, len(coeffs))
	for i, c := range coeffs {
		c32[i] = int32(c)
	}
	return fromDense(n, c32)
}

func fromDense(n int, coeffs []int32) Poly {
	p := Poly{NumVars: n}
	for mask, c := range coeffs {
		if c != 0 {
			p.Terms = append(p.Terms, Term{Mask: uint32(mask), Coeff: c})
		}
	}
	return p
}

// Dense returns the full coefficient vector (index = variable mask).
func (p Poly) Dense() []int32 {
	out := make([]int32, 1<<uint(p.NumVars))
	for _, t := range p.Terms {
		out[t.Mask] = t.Coeff
	}
	return out
}

// Eval computes the polynomial at a binary assignment (bit i of x is
// variable i): the sum of coefficients whose mask is covered by x.
func (p Poly) Eval(x uint32) int64 {
	var sum int64
	for _, t := range p.Terms {
		if t.Mask&^x == 0 {
			sum += int64(t.Coeff)
		}
	}
	return sum
}

// Table reconstructs the truth table (inverse of FromTable); it panics
// if the polynomial is not Boolean-valued on some assignment.
func (p Poly) Table() truthtab.Table {
	t := truthtab.New(p.NumVars)
	for x := 0; x < t.Size(); x++ {
		switch p.Eval(uint32(x)) {
		case 0:
		case 1:
			t.SetBit(x, true)
		default:
			panic(fmt.Sprintf("poly: non-Boolean value %d at assignment %b", p.Eval(uint32(x)), x))
		}
	}
	return t
}

// Degree returns the largest monomial size (0 for constants).
func (p Poly) Degree() int {
	d := 0
	for _, t := range p.Terms {
		if n := bits.OnesCount32(t.Mask); n > d {
			d = n
		}
	}
	return d
}

// NumTerms returns the number of non-zero terms.
func (p Poly) NumTerms() int { return len(p.Terms) }

// ConstTerm returns the coefficient of the empty monomial w_∅.
func (p Poly) ConstTerm() int32 {
	if len(p.Terms) > 0 && p.Terms[0].Mask == 0 {
		return p.Terms[0].Coeff
	}
	return 0
}

// NonConstTerms returns the terms with non-empty monomials (these become
// the hidden neurons, Fig. 2).
func (p Poly) NonConstTerms() []Term {
	if len(p.Terms) > 0 && p.Terms[0].Mask == 0 {
		return p.Terms[1:]
	}
	return p.Terms
}

// Sparsity returns the fraction of the 2^n possible coefficients that
// are zero — the property §II-B links to circuit complexity and §III-F
// exploits for GPU simulation.
func (p Poly) Sparsity() float64 {
	total := 1 << uint(p.NumVars)
	return 1 - float64(len(p.Terms))/float64(total)
}

// Negate returns 1 - p (the polynomial of the complemented function).
func (p Poly) Negate() Poly {
	out := Poly{NumVars: p.NumVars, Terms: make([]Term, 0, len(p.Terms)+1)}
	hasConst := false
	for _, t := range p.Terms {
		c := -t.Coeff
		if t.Mask == 0 {
			c = 1 - t.Coeff
			hasConst = true
			if c == 0 {
				continue
			}
		}
		out.Terms = append(out.Terms, Term{Mask: t.Mask, Coeff: c})
	}
	if !hasConst {
		out.Terms = append(out.Terms, Term{Mask: 0, Coeff: 1})
		sort.Slice(out.Terms, func(i, j int) bool { return out.Terms[i].Mask < out.Terms[j].Mask })
	}
	return out
}

// String renders the polynomial in human-readable form.
func (p Poly) String() string {
	if len(p.Terms) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, t := range p.Terms {
		if i > 0 {
			if t.Coeff >= 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
			}
		} else if t.Coeff < 0 {
			b.WriteString("-")
		}
		c := t.Coeff
		if c < 0 {
			c = -c
		}
		if c != 1 || t.Mask == 0 {
			fmt.Fprintf(&b, "%d", c)
		}
		for v := 0; v < p.NumVars; v++ {
			if t.Mask>>uint(v)&1 == 1 {
				fmt.Fprintf(&b, "x%d", v)
			}
		}
	}
	return b.String()
}
