package poly

import (
	"c2nn/internal/irlint/diag"
	"c2nn/internal/truthtab"
)

// Polynomial-stage lint rules (PL···).
var (
	// RulePolyMask fires when a term's monomial mask uses a variable
	// outside the polynomial's declared variable count.
	RulePolyMask = diag.Register(diag.Rule{
		ID: "PL001", Stage: diag.StagePoly, Severity: diag.Error,
		Summary: "term mask references a variable out of range"})
	// RulePolyOrder fires when terms are not strictly ascending by
	// mask (the sparse invariant Eval and ConstTerm rely on).
	RulePolyOrder = diag.Register(diag.Rule{
		ID: "PL002", Stage: diag.StagePoly, Severity: diag.Error,
		Summary: "terms not in strictly ascending mask order"})
	// RulePolyZero fires on stored terms with a zero coefficient,
	// which waste neurons downstream.
	RulePolyZero = diag.Register(diag.Rule{
		ID: "PL003", Stage: diag.StagePoly, Severity: diag.Warning,
		Summary: "zero-coefficient term stored"})
	// RulePolyMismatch fires when re-evaluating the polynomial over
	// every input assignment disagrees with the source truth table —
	// the spot check of the paper's computational-equivalence claim at
	// the polynomial boundary.
	RulePolyMismatch = diag.Register(diag.Rule{
		ID: "PL004", Stage: diag.StagePoly, Severity: diag.Error,
		Summary: "polynomial disagrees with its source truth table"})
)

// Lint checks the structural invariants of the polynomial.
func (p Poly) Lint(loc string) []diag.Diagnostic {
	var ds []diag.Diagnostic
	limit := uint32(1)<<uint(p.NumVars) - 1
	prevMask := int64(-1)
	ordered := true
	for ti, t := range p.Terms {
		if p.NumVars < 32 && t.Mask > limit {
			ds = append(ds, RulePolyMask.New(loc,
				"term %d mask %#x uses variables beyond the %d declared",
				ti, t.Mask, p.NumVars))
		}
		if int64(t.Mask) <= prevMask && ordered {
			ds = append(ds, RulePolyOrder.New(loc,
				"term %d mask %#x does not ascend past %#x", ti, t.Mask, prevMask))
			ordered = false // one diagnostic per polynomial is enough
		}
		prevMask = int64(t.Mask)
		if t.Coeff == 0 {
			ds = append(ds, RulePolyZero.New(loc,
				"term %d with mask %#x has coefficient 0", ti, t.Mask))
		}
	}
	return ds
}

// LintAgainstTable re-evaluates the polynomial on every one of the 2^k
// input assignments of the truth table it was derived from and reports
// any disagreement (including non-Boolean values). The caller bounds k;
// the verifier only spot-checks tables with k ≤ 8.
func LintAgainstTable(p Poly, t truthtab.Table, loc string) []diag.Diagnostic {
	var ds []diag.Diagnostic
	if p.NumVars != t.NumVars {
		ds = append(ds, RulePolyMismatch.New(loc,
			"polynomial over %d variables checked against %d-variable table",
			p.NumVars, t.NumVars))
		return ds
	}
	for x := 0; x < t.Size(); x++ {
		got := p.Eval(uint32(x))
		want := int64(0)
		if t.Bit(x) {
			want = 1
		}
		if got != want {
			ds = append(ds, RulePolyMismatch.New(loc,
				"assignment %0*b evaluates to %d, table says %d",
				p.NumVars, x, got, want))
		}
	}
	return ds
}
