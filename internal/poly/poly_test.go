package poly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"c2nn/internal/truthtab"
)

func randomTable(rng *rand.Rand, k int) truthtab.Table {
	t := truthtab.New(k)
	for i := range t.Words {
		t.Words[i] = rng.Uint64()
	}
	// Re-mask via an identity op.
	return t.Not().Not()
}

// Property: FromTable inverts Table() — the polynomial reproduces the
// function exactly (Boolean-valued on all assignments).
func TestFromTableRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for k := 0; k <= 10; k++ {
		for trial := 0; trial < 20; trial++ {
			tab := randomTable(rng, k)
			p := FromTable(tab)
			if !p.Table().Equal(tab) {
				t.Fatalf("k=%d: round trip failed for %v", k, tab)
			}
		}
	}
}

// Property: the three converters agree term for term.
func TestConvertersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for k := 0; k <= 9; k++ {
		for trial := 0; trial < 10; trial++ {
			tab := randomTable(rng, k)
			a := FromTable(tab)
			b := FromTableDNF(tab)
			c := FromTableIterative(tab)
			if !equalPoly(a, b) || !equalPoly(a, c) {
				t.Fatalf("k=%d: converters disagree:\nalg1: %v\ndnf:  %v\niter: %v", k, a, b, c)
			}
		}
	}
}

func equalPoly(a, b Poly) bool {
	if a.NumVars != b.NumVars || len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] {
			return false
		}
	}
	return true
}

func TestKnownPolynomials(t *testing.T) {
	// AND(x0,x1) = x0·x1
	and := FromTable(truthtab.Var(2, 0).And(truthtab.Var(2, 1)))
	if len(and.Terms) != 1 || and.Terms[0] != (Term{Mask: 3, Coeff: 1}) {
		t.Errorf("AND poly = %v", and)
	}
	// OR(x0,x1) = x0 + x1 - x0·x1
	or := FromTable(truthtab.Var(2, 0).Or(truthtab.Var(2, 1)))
	want := []Term{{1, 1}, {2, 1}, {3, -1}}
	if len(or.Terms) != 3 || or.Terms[0] != want[0] || or.Terms[1] != want[1] || or.Terms[2] != want[2] {
		t.Errorf("OR poly = %v", or)
	}
	// XOR(x0,x1) = x0 + x1 - 2·x0·x1
	xor := FromTable(truthtab.Var(2, 0).Xor(truthtab.Var(2, 1)))
	if xor.Terms[2].Coeff != -2 {
		t.Errorf("XOR poly = %v", xor)
	}
	// NOT(x0) = 1 - x0
	not := FromTable(truthtab.Var(1, 0).Not())
	if len(not.Terms) != 2 || not.Terms[0] != (Term{0, 1}) || not.Terms[1] != (Term{1, -1}) {
		t.Errorf("NOT poly = %v", not)
	}
	// Constant one over 3 vars: single empty-mask term.
	one := FromTable(truthtab.Const(3, true))
	if len(one.Terms) != 1 || one.Terms[0] != (Term{0, 1}) {
		t.Errorf("const poly = %v", one)
	}
}

func TestMultiAND(t *testing.T) {
	// The paper's §V example: a wide AND has exactly one monomial, the
	// product of all inputs.
	k := 9
	tab := truthtab.Const(k, true)
	for v := 0; v < k; v++ {
		tab = tab.And(truthtab.Var(k, v))
	}
	p := FromTable(tab)
	if len(p.Terms) != 1 || p.Terms[0].Mask != uint32(1<<uint(k))-1 || p.Terms[0].Coeff != 1 {
		t.Fatalf("AND9 poly = %v", p)
	}
	if p.Degree() != k || p.Sparsity() <= 0.99 {
		t.Errorf("degree=%d sparsity=%f", p.Degree(), p.Sparsity())
	}
}

func TestParityIsDense(t *testing.T) {
	// Parity has all 2^k - 1 non-empty monomials: the worst case for
	// polynomial sparsity (§III-B3's exponential hidden-layer bound).
	k := 6
	tab := truthtab.Const(k, false)
	for v := 0; v < k; v++ {
		tab = tab.Xor(truthtab.Var(k, v))
	}
	p := FromTable(tab)
	if len(p.Terms) != 1<<uint(k)-1 {
		t.Fatalf("parity terms = %d, want %d", len(p.Terms), 1<<uint(k)-1)
	}
}

func TestEvalMatchesTable(t *testing.T) {
	f := func(rows uint16) bool {
		tab := truthtab.New(4)
		for i := 0; i < 16; i++ {
			tab.SetBit(i, rows>>uint(i)&1 == 1)
		}
		p := FromTable(tab)
		for x := uint32(0); x < 16; x++ {
			want := int64(0)
			if tab.Bit(int(x)) {
				want = 1
			}
			if p.Eval(x) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNegate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		tab := randomTable(rng, 5)
		p := FromTable(tab)
		n := p.Negate()
		if !n.Table().Equal(tab.Not()) {
			t.Fatalf("Negate failed for %v", tab)
		}
	}
}

func TestConstAndNonConstTerms(t *testing.T) {
	p := FromTable(truthtab.Var(2, 0).Not()) // 1 - x0
	if p.ConstTerm() != 1 {
		t.Errorf("const term = %d", p.ConstTerm())
	}
	nc := p.NonConstTerms()
	if len(nc) != 1 || nc[0].Mask != 1 {
		t.Errorf("non-const terms = %v", nc)
	}
	q := FromTable(truthtab.Var(2, 0)) // x0: no const term
	if q.ConstTerm() != 0 || len(q.NonConstTerms()) != 1 {
		t.Errorf("q = %v", q)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := randomTable(rng, 6)
	p := FromTable(tab)
	d := p.Dense()
	nz := 0
	for _, c := range d {
		if c != 0 {
			nz++
		}
	}
	if nz != p.NumTerms() {
		t.Fatalf("dense nnz %d != terms %d", nz, p.NumTerms())
	}
}

func TestString(t *testing.T) {
	p := FromTable(truthtab.Var(2, 0).Xor(truthtab.Var(2, 1)))
	if s := p.String(); s != "x0 + x1 - 2x0x1" {
		t.Errorf("String = %q", s)
	}
	if (Poly{NumVars: 2}).String() != "0" {
		t.Error("empty poly string")
	}
}

func TestDegreeBoundedByVars(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(8)
		p := FromTable(randomTable(rng, k))
		if p.Degree() > k {
			t.Fatalf("degree %d > k %d", p.Degree(), k)
		}
	}
}
