package truthtab

import (
	"testing"
	"testing/quick"
)

func TestVarProjection(t *testing.T) {
	for k := 1; k <= 9; k++ {
		for v := 0; v < k; v++ {
			tab := Var(k, v)
			for i := 0; i < tab.Size(); i++ {
				want := i>>uint(v)&1 == 1
				if tab.Bit(i) != want {
					t.Fatalf("Var(%d,%d).Bit(%d) = %v", k, v, i, tab.Bit(i))
				}
			}
		}
	}
}

func TestConst(t *testing.T) {
	for k := 0; k <= 8; k++ {
		c1 := Const(k, true)
		c0 := Const(k, false)
		if c1.CountOnes() != c1.Size() || c0.CountOnes() != 0 {
			t.Fatalf("k=%d: ones=%d/%d", k, c1.CountOnes(), c0.CountOnes())
		}
		if ok, v := c1.IsConst(); !ok || !v {
			t.Fatal("IsConst(true) failed")
		}
		if ok, v := c0.IsConst(); !ok || v {
			t.Fatal("IsConst(false) failed")
		}
	}
}

func TestBitwiseOps(t *testing.T) {
	k := 7 // spans two words
	a := Var(k, 2)
	b := Var(k, 6)
	and := a.And(b)
	or := a.Or(b)
	xor := a.Xor(b)
	not := a.Not()
	mux := Mux(Var(k, 0), a, b)
	for i := 0; i < 1<<uint(k); i++ {
		av := i>>2&1 == 1
		bv := i>>6&1 == 1
		sv := i&1 == 1
		if and.Bit(i) != (av && bv) || or.Bit(i) != (av || bv) || xor.Bit(i) != (av != bv) || not.Bit(i) == av {
			t.Fatalf("op mismatch at %d", i)
		}
		wantMux := av
		if sv {
			wantMux = bv
		}
		if mux.Bit(i) != wantMux {
			t.Fatalf("mux mismatch at %d", i)
		}
	}
}

func TestSetBitRoundTrip(t *testing.T) {
	f := func(rows []bool) bool {
		k := 4
		if len(rows) > 16 {
			rows = rows[:16]
		}
		tab := FromBits(k, rows)
		for i, v := range rows {
			if tab.Bit(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDependsOn(t *testing.T) {
	k := 5
	// f = x1 XOR x3 depends on exactly vars 1 and 3.
	f := Var(k, 1).Xor(Var(k, 3))
	for v := 0; v < k; v++ {
		want := v == 1 || v == 3
		if f.DependsOn(v) != want {
			t.Errorf("DependsOn(%d) = %v", v, f.DependsOn(v))
		}
	}
}

func TestEvalAgainstBit(t *testing.T) {
	tab := Var(3, 0).And(Var(3, 2)).Or(Var(3, 1).Not())
	for i := uint64(0); i < 8; i++ {
		if tab.Eval(i) != tab.Bit(int(i)) {
			t.Fatalf("Eval(%d) != Bit", i)
		}
	}
}

func TestEqualAndString(t *testing.T) {
	a := Var(3, 1)
	b := Var(3, 1)
	c := Var(3, 2)
	if !a.Equal(b) || a.Equal(c) || a.Equal(Var(4, 1)) {
		t.Fatal("Equal broken")
	}
	if a.String() != "11001100" {
		t.Fatalf("String = %q", a.String())
	}
	if Var(8, 1).String() == "" {
		t.Fatal("large table String empty")
	}
}

func TestLastWordMasked(t *testing.T) {
	// k=3 occupies 8 bits of one word; Not must not set garbage above.
	n := Const(3, false).Not()
	if n.Words[0] != 0xff {
		t.Fatalf("mask leak: %x", n.Words[0])
	}
}

func TestInfluenceKnownFunctions(t *testing.T) {
	// AND_n: each input has influence 2^(1-n) (it matters only when all
	// others are 1).
	for n := 1; n <= 8; n++ {
		and := Const(n, true)
		for v := 0; v < n; v++ {
			and = and.And(Var(n, v))
		}
		want := 1.0
		for i := 1; i < n; i++ {
			want /= 2
		}
		for v := 0; v < n; v++ {
			if got := and.Influence(v); got != want {
				t.Fatalf("AND_%d influence(%d) = %v, want %v", n, v, got, want)
			}
		}
	}
	// XOR_n: every input has influence 1; total influence = n.
	n := 6
	xor := Const(n, false)
	for v := 0; v < n; v++ {
		xor = xor.Xor(Var(n, v))
	}
	for v := 0; v < n; v++ {
		if got := xor.Influence(v); got != 1 {
			t.Fatalf("XOR influence(%d) = %v", v, got)
		}
	}
	if got := xor.TotalInfluence(); got != float64(n) {
		t.Fatalf("XOR total influence = %v", got)
	}
	// Constants and irrelevant variables have zero influence.
	if Const(4, true).TotalInfluence() != 0 {
		t.Fatal("constant has influence")
	}
	proj := Var(4, 2)
	if proj.Influence(2) != 1 || proj.Influence(0) != 0 {
		t.Fatal("projection influences wrong")
	}
	// DependsOn agrees with Influence > 0.
	f := Var(5, 1).And(Var(5, 3)).Xor(Var(5, 0))
	for v := 0; v < 5; v++ {
		if f.DependsOn(v) != (f.Influence(v) > 0) {
			t.Fatalf("DependsOn(%d) disagrees with Influence", v)
		}
	}
}
