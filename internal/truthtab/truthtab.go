// Package truthtab implements packed truth tables — the LUT
// representation of Boolean functions produced by technology mapping
// (paper Fig. 3) and consumed by the polynomial converter (Algorithm 1).
//
// A table over k variables stores 2^k result bits packed into uint64
// words; bit i is the function value for the input assignment whose
// binary encoding is i (variable 0 is the least significant input).
package truthtab

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars bounds the supported LUT size. 2^24 bits = 2 MiB per table;
// the paper's experiments go up to L = 11 and Fig. 4 up to ~20.
const MaxVars = 24

// Table is a packed truth table over NumVars inputs.
type Table struct {
	NumVars int
	Words   []uint64
}

// New returns an all-false table over k variables.
func New(k int) Table {
	if k < 0 || k > MaxVars {
		panic(fmt.Sprintf("truthtab: invalid variable count %d", k))
	}
	return Table{NumVars: k, Words: make([]uint64, wordsFor(k))}
}

func wordsFor(k int) int {
	if k <= 6 {
		return 1
	}
	return 1 << uint(k-6)
}

// Size returns the number of rows (2^k).
func (t Table) Size() int { return 1 << uint(t.NumVars) }

// Bit returns the function value for input assignment i.
func (t Table) Bit(i int) bool {
	return t.Words[i>>6]>>(uint(i)&63)&1 == 1
}

// SetBit sets the function value for input assignment i.
func (t *Table) SetBit(i int, v bool) {
	if v {
		t.Words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		t.Words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// mask returns the valid-bit mask for the last word of a k-variable
// table (tables with k < 6 occupy part of one word).
func mask(k int) uint64 {
	if k >= 6 {
		return ^uint64(0)
	}
	return 1<<(1<<uint(k)) - 1
}

// Var returns the projection table of variable v over k variables:
// f(x) = x_v.
func Var(k, v int) Table {
	if v < 0 || v >= k {
		panic(fmt.Sprintf("truthtab: variable %d out of range for %d-input table", v, k))
	}
	t := New(k)
	if v < 6 {
		// Pattern within a word: blocks of 2^v ones.
		var w uint64
		block := 1 << uint(v)
		for i := 0; i < 64; i++ {
			if i/block%2 == 1 {
				w |= 1 << uint(i)
			}
		}
		for i := range t.Words {
			t.Words[i] = w
		}
	} else {
		// Whole words alternate in blocks of 2^(v-6).
		block := 1 << uint(v-6)
		for i := range t.Words {
			if i/block%2 == 1 {
				t.Words[i] = ^uint64(0)
			}
		}
	}
	t.Words[len(t.Words)-1] &= mask(k)
	return t
}

// Const returns the constant table over k variables.
func Const(k int, v bool) Table {
	t := New(k)
	if v {
		for i := range t.Words {
			t.Words[i] = ^uint64(0)
		}
		t.Words[len(t.Words)-1] &= mask(k)
	}
	return t
}

func (t Table) check(o Table) {
	if t.NumVars != o.NumVars {
		panic("truthtab: mixed-arity table operation")
	}
}

// And returns t AND o.
func (t Table) And(o Table) Table {
	t.check(o)
	r := New(t.NumVars)
	for i := range r.Words {
		r.Words[i] = t.Words[i] & o.Words[i]
	}
	return r
}

// Or returns t OR o.
func (t Table) Or(o Table) Table {
	t.check(o)
	r := New(t.NumVars)
	for i := range r.Words {
		r.Words[i] = t.Words[i] | o.Words[i]
	}
	return r
}

// Xor returns t XOR o.
func (t Table) Xor(o Table) Table {
	t.check(o)
	r := New(t.NumVars)
	for i := range r.Words {
		r.Words[i] = t.Words[i] ^ o.Words[i]
	}
	return r
}

// Not returns the complement of t.
func (t Table) Not() Table {
	r := New(t.NumVars)
	for i := range r.Words {
		r.Words[i] = ^t.Words[i]
	}
	r.Words[len(r.Words)-1] &= mask(t.NumVars)
	return r
}

// Mux returns sel ? b : a, pointwise.
func Mux(sel, a, b Table) Table {
	sel.check(a)
	sel.check(b)
	r := New(sel.NumVars)
	for i := range r.Words {
		r.Words[i] = (a.Words[i] &^ sel.Words[i]) | (b.Words[i] & sel.Words[i])
	}
	return r
}

// Equal reports exact equality.
func (t Table) Equal(o Table) bool {
	if t.NumVars != o.NumVars {
		return false
	}
	for i := range t.Words {
		if t.Words[i] != o.Words[i] {
			return false
		}
	}
	return true
}

// CountOnes returns the number of satisfying assignments.
func (t Table) CountOnes() int {
	n := 0
	for _, w := range t.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsConst reports whether the table is constant, and the value.
func (t Table) IsConst() (bool, bool) {
	ones := t.CountOnes()
	if ones == 0 {
		return true, false
	}
	if ones == t.Size() {
		return true, true
	}
	return false, false
}

// DependsOn reports whether the function actually depends on variable v
// (its positive and negative cofactors differ).
func (t Table) DependsOn(v int) bool {
	p := Var(t.NumVars, v)
	for i := 0; i < t.Size(); i++ {
		if p.Bit(i) {
			continue // visit each pair once, from the v=0 side
		}
		if t.Bit(i) != t.Bit(i|1<<uint(v)) {
			return true
		}
	}
	return false
}

// Cofactor returns the (k−1)-variable table obtained by fixing
// variable v to val: remaining variables keep their relative order.
// For a function that does not depend on v (DependsOn(v) == false) the
// cofactor computes the same function over one fewer input — the
// shrink used by lutmap.Normalize to prune unused cut leaves.
func (t Table) Cofactor(v int, val bool) Table {
	if v < 0 || v >= t.NumVars {
		panic(fmt.Sprintf("truthtab: cofactor variable %d out of range for %d-input table", v, t.NumVars))
	}
	r := New(t.NumVars - 1)
	low := 1<<uint(v) - 1 // bits below v
	fix := 0
	if val {
		fix = 1 << uint(v)
	}
	for i := 0; i < r.Size(); i++ {
		src := i&low | (i&^low)<<1 | fix
		r.SetBit(i, t.Bit(src))
	}
	return r
}

// Eval applies the table to a concrete input assignment (bit i of x is
// variable i).
func (t Table) Eval(x uint64) bool {
	return t.Bit(int(x & uint64(t.Size()-1)))
}

// Influence returns the influence of variable v: the probability over a
// uniform input that flipping v flips the output — the quantity the
// Analysis of Boolean Functions links to circuit sensitivity and
// polynomial density (paper §II-B, O'Donnell 2014).
func (t Table) Influence(v int) float64 {
	if t.NumVars == 0 || v < 0 || v >= t.NumVars {
		return 0
	}
	flips := 0
	bit := 1 << uint(v)
	for i := 0; i < t.Size(); i++ {
		if i&bit != 0 {
			continue // count each complementary pair once
		}
		if t.Bit(i) != t.Bit(i|bit) {
			flips += 2
		}
	}
	return float64(flips) / float64(t.Size())
}

// TotalInfluence returns the sum of variable influences (the average
// sensitivity of the function).
func (t Table) TotalInfluence() float64 {
	total := 0.0
	for v := 0; v < t.NumVars; v++ {
		total += t.Influence(v)
	}
	return total
}

// String renders small tables as a binary row string (MSB row first),
// larger tables as a hex digest.
func (t Table) String() string {
	if t.NumVars <= 6 {
		var b strings.Builder
		for i := t.Size() - 1; i >= 0; i-- {
			if t.Bit(i) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	return fmt.Sprintf("table[%d vars, %d ones]", t.NumVars, t.CountOnes())
}

// FromBits builds a table from an explicit row-value slice (row i =
// value for assignment i).
func FromBits(k int, rows []bool) Table {
	t := New(k)
	for i, v := range rows {
		t.SetBit(i, v)
	}
	return t
}
