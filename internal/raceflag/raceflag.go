//go:build !race

// Package raceflag reports whether the race detector is compiled in,
// so expensive SAT-heavy tests can scale themselves down under
// `go test -race` (the detector slows the solver by an order of
// magnitude) while still running in full on plain builds.
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = false
