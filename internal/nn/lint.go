package nn

import (
	"math"
	"strconv"

	"c2nn/internal/irlint/diag"
)

// NN-stage lint rules (NN···).
var (
	// RuleNNSegments fires when the layer/segment chain is
	// inconsistent: segment starts out of step with accumulated rows,
	// or TotalUnits disagreeing with the sum.
	RuleNNSegments = diag.Register(diag.Rule{
		ID: "NN001", Stage: diag.StageNN, Severity: diag.Error,
		Summary: "layer segment or unit accounting mismatch"})
	// RuleNNMatrix fires on malformed CSR storage: row-pointer array
	// of the wrong length, non-monotone row pointers, or column/value
	// arrays of disagreeing lengths.
	RuleNNMatrix = diag.Register(diag.Rule{
		ID: "NN002", Stage: diag.StageNN, Severity: diag.Error,
		Summary: "sparse weight matrix storage malformed"})
	// RuleNNColumn fires when a weight references a column at or
	// beyond the units available before its layer — a sparse index
	// that would read garbage activations.
	RuleNNColumn = diag.Register(diag.Rule{
		ID: "NN003", Stage: diag.StageNN, Severity: diag.Error,
		Summary: "weight column index out of range"})
	// RuleNNFinite fires on NaN or infinite weights and biases.
	RuleNNFinite = diag.Register(diag.Rule{
		ID: "NN004", Stage: diag.StageNN, Severity: diag.Error,
		Summary: "non-finite weight or bias"})
	// RuleNNBias fires when a threshold layer's bias vector length
	// disagrees with its row count, or a linear layer carries a bias
	// (linear layers are exact and bias-free, §III-B3).
	RuleNNBias = diag.Register(diag.Rule{
		ID: "NN005", Stage: diag.StageNN, Severity: diag.Error,
		Summary: "bias vector shape violation"})
	// RuleNNPort fires when a port map or flip-flop feedback entry
	// references a unit outside the activation vector, or a feedback
	// target outside the PI segment.
	RuleNNPort = diag.Register(diag.Rule{
		ID: "NN006", Stage: diag.StageNN, Severity: diag.Error,
		Summary: "port or feedback unit out of range"})
)

// Lint checks every structural invariant of the layer chain,
// collecting all violations.
func (n *Network) Lint() []diag.Diagnostic {
	var ds []diag.Diagnostic
	loc := func(i int) string { return "layer " + strconv.Itoa(i) }

	if len(n.SegStart) != len(n.Layers) {
		ds = append(ds, RuleNNSegments.New("network",
			"%d segment starts for %d layers", len(n.SegStart), len(n.Layers)))
	}
	units := 1 + n.NumPIs
	for i := range n.Layers {
		l := &n.Layers[i]
		if i < len(n.SegStart) && int(n.SegStart[i]) != units {
			ds = append(ds, RuleNNSegments.New(loc(i),
				"segment starts at unit %d, %d units precede it", n.SegStart[i], units))
		}
		if l.W == nil {
			ds = append(ds, RuleNNMatrix.New(loc(i), "layer has no weight matrix"))
			continue
		}
		ds = append(ds, lintCSR(l, i, units)...)
		if l.Threshold {
			if len(l.Bias) != l.W.Rows {
				ds = append(ds, RuleNNBias.New(loc(i),
					"threshold layer bias length %d != %d rows", len(l.Bias), l.W.Rows))
			}
		} else if l.Bias != nil {
			ds = append(ds, RuleNNBias.New(loc(i),
				"linear layer carries a bias of length %d", len(l.Bias)))
		}
		for bi, b := range l.Bias {
			if f64 := float64(b); math.IsNaN(f64) || math.IsInf(f64, 0) {
				ds = append(ds, RuleNNFinite.New(loc(i),
					"bias %d is %v", bi, b))
			}
		}
		units += l.W.Rows
	}
	if units != n.TotalUnits {
		ds = append(ds, RuleNNSegments.New("network",
			"TotalUnits %d, layer chain produces %d", n.TotalUnits, units))
	}
	return ds
}

// lintCSR validates one layer's sparse matrix: storage shape, column
// bounds against the units preceding the layer, finite values.
func lintCSR(l *Layer, layer, units int) []diag.Diagnostic {
	var ds []diag.Diagnostic
	loc := "layer " + strconv.Itoa(layer)
	m := l.W

	if m.Cols > units {
		ds = append(ds, RuleNNColumn.New(loc,
			"matrix spans %d columns, only %d units precede the layer", m.Cols, units))
	}
	if len(m.RowPtr) != m.Rows+1 {
		ds = append(ds, RuleNNMatrix.New(loc,
			"row pointer length %d for %d rows", len(m.RowPtr), m.Rows))
		return ds // entry iteration is unsafe
	}
	if len(m.Col) != len(m.Val) {
		ds = append(ds, RuleNNMatrix.New(loc,
			"%d column indices for %d values", len(m.Col), len(m.Val)))
		return ds
	}
	if m.Rows > 0 {
		if m.RowPtr[0] != 0 {
			ds = append(ds, RuleNNMatrix.New(loc,
				"row pointers start at %d, not 0", m.RowPtr[0]))
		}
		if int(m.RowPtr[m.Rows]) != len(m.Col) {
			ds = append(ds, RuleNNMatrix.New(loc,
				"row pointers end at %d, %d entries stored", m.RowPtr[m.Rows], len(m.Col)))
		}
		for r := 0; r < m.Rows; r++ {
			if m.RowPtr[r] > m.RowPtr[r+1] {
				ds = append(ds, RuleNNMatrix.New(loc,
					"row %d pointer %d exceeds row %d pointer %d",
					r, m.RowPtr[r], r+1, m.RowPtr[r+1]))
				return ds
			}
		}
	}
	for p, c := range m.Col {
		if c < 0 || int(c) >= m.Cols {
			ds = append(ds, RuleNNColumn.New(loc,
				"entry %d column %d outside matrix of %d columns", p, c, m.Cols))
		}
	}
	for p, v := range m.Val {
		if f64 := float64(v); math.IsNaN(f64) || math.IsInf(f64, 0) {
			ds = append(ds, RuleNNFinite.New(loc, "weight entry %d is %v", p, v))
		}
	}
	return ds
}

// Lint checks the model: the network itself plus port-map and
// flip-flop feedback unit bounds.
func (m *Model) Lint() []diag.Diagnostic {
	ds := m.Net.Lint()
	total := int32(m.Net.TotalUnits)
	piEnd := int32(1 + m.Net.NumPIs)

	checkPorts := func(kind string, ports []PortMap) {
		for _, p := range ports {
			for bi, u := range p.Units {
				if u < 0 || u >= total {
					ds = append(ds, RuleNNPort.New(kind+" "+p.Name,
						"bit %d maps to unit %d, network has %d units", bi, u, total))
				}
			}
		}
	}
	checkPorts("input", m.Inputs)
	checkPorts("output", m.Outputs)
	for fi, fb := range m.Feedback {
		loc := "feedback " + strconv.Itoa(fi)
		if fb.FromUnit < 0 || fb.FromUnit >= total {
			ds = append(ds, RuleNNPort.New(loc,
				"source unit %d outside network of %d units", fb.FromUnit, total))
		}
		if fb.ToPI < 1 || fb.ToPI >= piEnd {
			ds = append(ds, RuleNNPort.New(loc,
				"target unit %d outside the PI segment [1, %d)", fb.ToPI, piEnd))
		}
	}
	return ds
}
