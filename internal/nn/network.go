// Package nn builds the neural-network representation of a digital
// circuit (the paper's core contribution). Every LUT of the computation
// graph is converted to its multi-linear polynomial; each non-constant
// polynomial term becomes a hidden threshold neuron with unit weights
// and bias |S|−1 (Fig. 2, Eq. 3), and each signal is the exact linear
// combination of its term neurons. Because those linear layers are
// exact, each one is folded into the following threshold layer by
// multiplying weights (Fig. 5), halving the network depth (§III-D).
//
// Activation layout: one shared, growing activation vector. Unit 0 is
// the constant-one neuron (the h_∅ term of Eq. 1), units 1..NumPIs hold
// the circuit's combinational inputs, and each layer appends its rows.
// A layer's weight matrix has as many columns as there are units before
// it, so a forward pass is a chain of sparse matrix products — exactly
// the PyTorch execution model of §III-E, realised on float32 CSR
// matrices from internal/tensor.
package nn

import (
	"fmt"

	"c2nn/internal/irlint/diag"
	"c2nn/internal/tensor"
)

// Layer is one NN layer: rows of W are this layer's neurons, columns
// span every unit produced before it. Threshold layers apply
// y = Θ(W·a − Bias); linear layers apply y = W·a exactly (constant
// contributions ride on the constant-one unit, so linear layers carry no
// bias, matching §III-B3).
type Layer struct {
	W         *tensor.CSR
	Bias      []float32 // nil for linear layers
	Threshold bool
}

// Network is the layered NN with the shared activation vector.
type Network struct {
	// NumPIs is the number of circuit combinational inputs.
	NumPIs int
	// SegStart[l] is the first unit index of layer l's rows.
	SegStart []int32
	// TotalUnits = 1 (const) + NumPIs + all layer rows.
	TotalUnits int
	Layers     []Layer
}

// ConstUnit is the index of the constant-one activation.
const ConstUnit = 0

// PIUnit returns the unit index of combinational input i.
func PIUnit(i int) int32 { return int32(1 + i) }

// EvalSingle runs one stimulus through the network and returns the full
// activation vector (the test oracle; the batched engine lives in
// internal/simengine).
func (n *Network) EvalSingle(pis []float32) []float32 {
	if len(pis) != n.NumPIs {
		panic("nn: wrong PI count")
	}
	a := make([]float32, n.TotalUnits)
	a[ConstUnit] = 1
	copy(a[1:], pis)
	for li := range n.Layers {
		l := &n.Layers[li]
		seg := n.SegStart[li]
		out := a[seg : seg+int32(l.W.Rows)]
		l.W.MulVec(a[:l.W.Cols], out)
		if l.Threshold {
			for r := range out {
				if out[r]-l.Bias[r] > 0 {
					out[r] = 1
				} else {
					out[r] = 0
				}
			}
		}
	}
	return a
}

// Stats summarises the network for Table I: layer count, connection
// count, mean per-layer sparsity, memory footprint.
type Stats struct {
	Layers       int
	Neurons      int
	Connections  int // total non-zero weights
	MeanSparsity float64
	MemoryBytes  int
	MaxLayerRows int
}

// ComputeStats gathers network statistics.
func (n *Network) ComputeStats() Stats {
	s := Stats{Layers: len(n.Layers)}
	var spSum float64
	for i := range n.Layers {
		l := &n.Layers[i]
		s.Neurons += l.W.Rows
		s.Connections += l.W.NNZ()
		spSum += l.W.Sparsity()
		s.MemoryBytes += l.W.MemoryBytes() + 4*len(l.Bias)
		if l.W.Rows > s.MaxLayerRows {
			s.MaxLayerRows = l.W.Rows
		}
	}
	if len(n.Layers) > 0 {
		s.MeanSparsity = spSum / float64(len(n.Layers))
	}
	return s
}

// Validate checks the structural invariants of the layer chain. It is
// a thin wrapper over the collect-all irlint rules in lint.go,
// returning the first Error-severity diagnostic; use Lint to see every
// violation.
func (n *Network) Validate() error {
	for _, d := range n.Lint() {
		if d.Severity == diag.Error {
			return fmt.Errorf("nn: [%s] %s: %s", d.Rule, d.Loc, d.Msg)
		}
	}
	return nil
}

// PortMap ties a named circuit port to unit indices (LSB-first).
type PortMap struct {
	Name  string
	Units []int32
}

// Feedback wires a pseudo-output (flip-flop D) unit back to a
// pseudo-input (flip-flop Q) unit between cycles — the recurrent
// connection of the flip-flop cut (§III-C).
type Feedback struct {
	FromUnit int32 // D value in the activation vector
	ToPI     int32 // Q unit (a PI slot) for the next cycle
	Init     bool
}

// LUTTrace records where one mapped LUT landed in the built network:
// the hidden units realising its polynomial terms and the exact linear
// form of its output value. TermUnits[i] is the threshold neuron of the
// non-constant term with variable set TermMasks[i] (a bitmask over the
// LUT's input pins); the LUT's value is Cst + Σ VCoefs[i]·VUnits[i]
// over binary unit activations. In merged networks the value form spans
// the term units directly (the signal is never materialised); unmerged
// networks point at the materialised signal unit with coefficient 1.
type LUTTrace struct {
	Level     int32
	TermUnits []int32
	TermMasks []uint32
	Cst       int32
	VUnits    []int32
	VCoefs    []int32
}

// Trace is the LUT→network provenance recorded by Build — the hook the
// fault-injection subsystem uses to force a LUT's behaviour per batch
// lane. LayerOfLevel[l] is the network layer whose rows are the term
// units of computation-graph level l (-1 for levels with no LUTs).
type Trace struct {
	LayerOfLevel []int32
	LUTs         []LUTTrace
}

// Model is a compiled circuit: the network plus the port and feedback
// metadata needed to simulate it, and the provenance recorded for
// throughput accounting.
type Model struct {
	Net      *Network
	Inputs   []PortMap
	Outputs  []PortMap
	Feedback []Feedback

	CircuitName string
	L           int   // LUT size used during mapping
	GateCount   int64 // gates incl. flip-flops, Table I's size metric
	Merged      bool

	// Trace is the LUT provenance of the build. It is not serialised:
	// models loaded from .c2nn files carry a nil Trace and cannot be
	// fault-injected.
	Trace *Trace
}

// FindInput returns the input port map with the given name, or nil.
func (m *Model) FindInput(name string) *PortMap {
	for i := range m.Inputs {
		if m.Inputs[i].Name == name {
			return &m.Inputs[i]
		}
	}
	return nil
}

// FindOutput returns the output port map with the given name, or nil.
func (m *Model) FindOutput(name string) *PortMap {
	for i := range m.Outputs {
		if m.Outputs[i].Name == name {
			return &m.Outputs[i]
		}
	}
	return nil
}
