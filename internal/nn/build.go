package nn

import (
	"fmt"
	"math/bits"
	"sort"

	"c2nn/internal/lutmap"
	"c2nn/internal/netlist"
	"c2nn/internal/obs"
	"c2nn/internal/poly"
	"c2nn/internal/tensor"
)

// BuildOptions configures network construction.
type BuildOptions struct {
	// Merge enables the depth-halving layer fusion of §III-D (Fig. 5).
	// Disabled it keeps the explicit hidden/linear alternation, which
	// the merged-vs-unmerged ablation benchmark measures.
	Merge bool
	// L records the LUT size used during mapping (Table I column).
	L int
	// BuildTrace, when non-nil, records the "nn" span with its "poly"
	// (polynomial generation) and "network" (layer construction) child
	// spans. Named BuildTrace because Trace already names the LUT
	// provenance this package attaches to models.
	BuildTrace *obs.Trace
}

// Build converts a mapped circuit into its neural-network model. The
// netlist supplies port names, flip-flop wiring and the gate count used
// by the throughput metric.
func Build(nl *netlist.Netlist, m *lutmap.Mapping, opts BuildOptions) (*Model, error) {
	bsp := opts.BuildTrace.Begin("nn")
	defer bsp.End()
	g := m.Graph
	psp := opts.BuildTrace.Begin("poly")
	polys := make([]poly.Poly, len(g.LUTs))
	for i := range g.LUTs {
		polys[i] = poly.FromTable(g.LUTs[i].Table)
	}
	if opts.BuildTrace != nil {
		var terms int64
		for i := range polys {
			terms += int64(len(polys[i].Terms))
		}
		psp.SetInt("luts", int64(len(polys))).SetInt("terms", terms)
	}
	psp.End()
	nsp := opts.BuildTrace.Begin("network")
	defer nsp.End()
	levels := g.Level()
	var depth int32
	for _, l := range levels {
		if l > depth {
			depth = l
		}
	}
	byLevel := make([][]int, depth+1)
	for u, l := range levels {
		byLevel[l] = append(byLevel[l], u)
	}

	var net *Network
	var tr *Trace
	var err error
	if opts.Merge {
		net, tr, err = buildMerged(g, polys, byLevel)
	} else {
		net, tr, err = buildUnmerged(g, polys, byLevel)
	}
	if err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}

	model := &Model{
		Net:         net,
		CircuitName: nl.Name,
		L:           opts.L,
		GateCount:   int64(nl.GateCount()),
		Merged:      opts.Merge,
		Trace:       tr,
	}
	if err := bindPorts(model, nl, m); err != nil {
		return nil, err
	}
	if opts.BuildTrace != nil {
		var nnz int64
		for li := range net.Layers {
			nnz += int64(len(net.Layers[li].W.Val))
		}
		nsp.SetInt("layers", int64(len(net.Layers))).
			SetInt("neurons", int64(net.TotalUnits)).
			SetInt("nnz", nnz)
	}
	return model, nil
}

// linform is the exact linear form of a signal over existing units:
// value = cst + Σ coeff·unit.
type linform struct {
	cst   int32
	units []int32
	coefs []int32
}

// rowAccum builds one sparse row by accumulating integer coefficients.
type rowAccum struct {
	coef map[int32]int32
}

func (r *rowAccum) add(unit, c int32) {
	if r.coef == nil {
		r.coef = make(map[int32]int32)
	}
	r.coef[unit] += c
	if r.coef[unit] == 0 {
		delete(r.coef, unit)
	}
}

func (r *rowAccum) emit(row int32, entries *[]tensor.Triple) {
	// Ascending unit order: FromTriples preserves insertion order within
	// a row, so emitting in map order would make the CSR layout — and
	// every downstream plan and report — vary from run to run.
	units := make([]int32, 0, len(r.coef))
	for unit := range r.coef {
		units = append(units, unit)
	}
	sort.Slice(units, func(i, j int) bool { return units[i] < units[j] })
	for _, unit := range units {
		*entries = append(*entries, tensor.Triple{Row: row, Col: unit, Val: float32(r.coef[unit])})
	}
}

// buildMerged constructs the depth-halved network: one threshold layer
// per computation-graph level (rows are polynomial terms, with each
// input's exact linear form substituted in — the weight product of
// Fig. 5) plus one final exact linear output layer.
func buildMerged(g *lutmap.Graph, polys []poly.Poly, byLevel [][]int) (*Network, *Trace, error) {
	net := &Network{NumPIs: g.NumPIs}
	units := int32(1 + g.NumPIs)
	lf := make([]linform, len(g.LUTs))
	tr := newTrace(g, byLevel)

	for level := 1; level < len(byLevel); level++ {
		luts := byLevel[level]
		if len(luts) == 0 {
			continue
		}
		segStart := units
		var entries []tensor.Triple
		var biases []float32
		row := int32(0)
		for _, u := range luts {
			p := polys[u]
			ins := g.LUTs[u].Ins
			terms := p.NonConstTerms()
			termUnits := make([]int32, len(terms))
			for ti, term := range terms {
				var acc rowAccum
				var constSum int32
				size := int32(bits.OnesCount32(term.Mask))
				for v := 0; v < p.NumVars; v++ {
					if term.Mask>>uint(v)&1 == 0 {
						continue
					}
					ref := ins[v]
					if ref.IsPI() {
						acc.add(PIUnit(ref.PI()), 1)
						continue
					}
					f := &lf[ref.LUT()]
					constSum += f.cst
					for k, unit := range f.units {
						acc.add(unit, f.coefs[k])
					}
				}
				acc.emit(row, &entries)
				biases = append(biases, float32(size-1-constSum))
				termUnits[ti] = segStart + row
				row++
			}
			f := linform{cst: p.ConstTerm()}
			for ti, term := range terms {
				f.units = append(f.units, termUnits[ti])
				f.coefs = append(f.coefs, term.Coeff)
			}
			lf[u] = f
			lt := &tr.LUTs[u]
			lt.TermUnits = termUnits
			lt.TermMasks = termMasks(terms)
			lt.Cst = f.cst
			lt.VUnits = f.units
			lt.VCoefs = f.coefs
		}
		w, err := tensor.FromTriples(int(row), int(segStart), entries)
		if err != nil {
			return nil, nil, err
		}
		net.Layers = append(net.Layers, Layer{W: w, Bias: biases, Threshold: true})
		net.SegStart = append(net.SegStart, segStart)
		tr.LayerOfLevel[level] = int32(len(net.Layers) - 1)
		units += row
	}

	// Final exact linear layer: one output neuron per combinational
	// output; no bias or threshold (§III-B3).
	segStart := units
	var entries []tensor.Triple
	for j, ref := range g.Outputs {
		row := int32(j)
		if ref.IsPI() {
			entries = append(entries, tensor.Triple{Row: row, Col: PIUnit(ref.PI()), Val: 1})
			continue
		}
		f := &lf[ref.LUT()]
		if f.cst != 0 {
			entries = append(entries, tensor.Triple{Row: row, Col: ConstUnit, Val: float32(f.cst)})
		}
		for k, unit := range f.units {
			entries = append(entries, tensor.Triple{Row: row, Col: unit, Val: float32(f.coefs[k])})
		}
	}
	w, err := tensor.FromTriples(len(g.Outputs), int(segStart), entries)
	if err != nil {
		return nil, nil, err
	}
	net.Layers = append(net.Layers, Layer{W: w, Threshold: false})
	net.SegStart = append(net.SegStart, segStart)
	units += int32(len(g.Outputs))
	net.TotalUnits = int(units)
	return net, tr, nil
}

// buildUnmerged constructs the explicit Fig. 2 alternation: a threshold
// hidden layer (terms, unit weights, bias |S|−1) followed by an exact
// linear layer materialising each LUT's signal, per level, plus the
// output layer. Twice the depth of the merged network (§III-D).
func buildUnmerged(g *lutmap.Graph, polys []poly.Poly, byLevel [][]int) (*Network, *Trace, error) {
	net := &Network{NumPIs: g.NumPIs}
	units := int32(1 + g.NumPIs)
	signalUnit := make([]int32, len(g.LUTs))
	tr := newTrace(g, byLevel)

	refUnit := func(r lutmap.NodeRef) int32 {
		if r.IsPI() {
			return PIUnit(r.PI())
		}
		return signalUnit[r.LUT()]
	}

	for level := 1; level < len(byLevel); level++ {
		luts := byLevel[level]
		if len(luts) == 0 {
			continue
		}
		// Hidden threshold layer: term neurons.
		hidStart := units
		var hidEntries []tensor.Triple
		var biases []float32
		hidRow := int32(0)
		termUnits := make(map[int][]int32, len(luts))
		for _, u := range luts {
			p := polys[u]
			ins := g.LUTs[u].Ins
			terms := p.NonConstTerms()
			tu := make([]int32, len(terms))
			for ti, term := range terms {
				size := int32(bits.OnesCount32(term.Mask))
				for v := 0; v < p.NumVars; v++ {
					if term.Mask>>uint(v)&1 == 1 {
						hidEntries = append(hidEntries, tensor.Triple{
							Row: hidRow, Col: refUnit(ins[v]), Val: 1})
					}
				}
				biases = append(biases, float32(size-1))
				tu[ti] = hidStart + hidRow
				hidRow++
			}
			termUnits[u] = tu
			tr.LUTs[u].TermUnits = tu
			tr.LUTs[u].TermMasks = termMasks(terms)
		}
		hw, err := tensor.FromTriples(int(hidRow), int(hidStart), hidEntries)
		if err != nil {
			return nil, nil, err
		}
		net.Layers = append(net.Layers, Layer{W: hw, Bias: biases, Threshold: true})
		net.SegStart = append(net.SegStart, hidStart)
		tr.LayerOfLevel[level] = int32(len(net.Layers) - 1)
		units += hidRow

		// Exact linear layer: one neuron per LUT signal.
		linStart := units
		var linEntries []tensor.Triple
		for li, u := range luts {
			p := polys[u]
			row := int32(li)
			if c := p.ConstTerm(); c != 0 {
				linEntries = append(linEntries, tensor.Triple{Row: row, Col: ConstUnit, Val: float32(c)})
			}
			for ti, term := range p.NonConstTerms() {
				linEntries = append(linEntries, tensor.Triple{
					Row: row, Col: termUnits[u][ti], Val: float32(term.Coeff)})
			}
			signalUnit[u] = linStart + row
			lt := &tr.LUTs[u]
			lt.Cst = 0
			lt.VUnits = []int32{signalUnit[u]}
			lt.VCoefs = []int32{1}
		}
		lw, err := tensor.FromTriples(len(luts), int(linStart), linEntries)
		if err != nil {
			return nil, nil, err
		}
		net.Layers = append(net.Layers, Layer{W: lw, Threshold: false})
		net.SegStart = append(net.SegStart, linStart)
		units += int32(len(luts))
	}

	// Output layer: identity rows onto the output signals.
	segStart := units
	var entries []tensor.Triple
	for j, ref := range g.Outputs {
		entries = append(entries, tensor.Triple{Row: int32(j), Col: refUnit(ref), Val: 1})
	}
	w, err := tensor.FromTriples(len(g.Outputs), int(segStart), entries)
	if err != nil {
		return nil, nil, err
	}
	net.Layers = append(net.Layers, Layer{W: w, Threshold: false})
	net.SegStart = append(net.SegStart, segStart)
	units += int32(len(g.Outputs))
	net.TotalUnits = int(units)
	return net, tr, nil
}

// newTrace allocates the provenance record with per-LUT levels filled
// in and every level layer unknown.
func newTrace(g *lutmap.Graph, byLevel [][]int) *Trace {
	tr := &Trace{
		LayerOfLevel: make([]int32, len(byLevel)),
		LUTs:         make([]LUTTrace, len(g.LUTs)),
	}
	for l := range tr.LayerOfLevel {
		tr.LayerOfLevel[l] = -1
	}
	for level, luts := range byLevel {
		for _, u := range luts {
			tr.LUTs[u].Level = int32(level)
		}
	}
	return tr
}

// termMasks extracts the variable-set masks of the non-constant terms.
func termMasks(terms []poly.Term) []uint32 {
	masks := make([]uint32, len(terms))
	for i, t := range terms {
		masks[i] = t.Mask
	}
	return masks
}

// bindPorts fills the model's port maps and flip-flop feedback from the
// netlist geometry: mapping PIs are primary inputs then FF Q pins;
// mapping outputs are primary outputs then FF D pins.
func bindPorts(model *Model, nl *netlist.Netlist, m *lutmap.Mapping) error {
	piIndex := make(map[netlist.NetID]int, len(m.PINets))
	for i, net := range m.PINets {
		piIndex[net] = i
	}
	for _, port := range nl.Inputs {
		pm := PortMap{Name: port.Name, Units: make([]int32, len(port.Bits))}
		for i, bit := range port.Bits {
			pi, ok := piIndex[bit]
			if !ok {
				return fmt.Errorf("nn: input %s bit %d is not a mapping PI", port.Name, i)
			}
			pm.Units[i] = PIUnit(pi)
		}
		model.Inputs = append(model.Inputs, pm)
	}

	// Output unit of combinational output j: row j of the final layer.
	lastSeg := model.Net.SegStart[len(model.Net.SegStart)-1]
	outUnit := func(j int) int32 { return lastSeg + int32(j) }

	outIndex := make(map[netlist.NetID]int, len(m.OutputNets))
	for j, net := range m.OutputNets {
		if _, dup := outIndex[net]; !dup {
			outIndex[net] = j
		}
	}
	for _, port := range nl.Outputs {
		pm := PortMap{Name: port.Name, Units: make([]int32, len(port.Bits))}
		for i, bit := range port.Bits {
			j, ok := outIndex[bit]
			if !ok {
				return fmt.Errorf("nn: output %s bit %d is not a mapping output", port.Name, i)
			}
			pm.Units[i] = outUnit(j)
		}
		model.Outputs = append(model.Outputs, pm)
	}

	// Flip-flop feedback: D outputs follow the primary output bits in
	// CombOutputs order; Q inputs follow the primary input bits.
	numPrimaryOut := nl.OutputBits()
	numPrimaryIn := nl.InputBits()
	for i, ff := range nl.FFs {
		j := numPrimaryOut + i
		pi := numPrimaryIn + i
		if m.OutputNets[j] != ff.D || m.PINets[pi] != ff.Q {
			return fmt.Errorf("nn: flip-flop %d wiring mismatch", i)
		}
		model.Feedback = append(model.Feedback, Feedback{
			FromUnit: outUnit(j),
			ToPI:     PIUnit(pi),
			Init:     ff.Init,
		})
	}
	return nil
}
