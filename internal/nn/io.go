package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"c2nn/internal/tensor"
)

// Binary model format (the stand-in for the stored PyTorch module of
// Fig. 1): little-endian, length-prefixed sections.
const (
	magic   = 0x43324E4E // "C2NN"
	version = 1
)

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Save writes the model. It returns the number of bytes written (the
// Table I "Memory" column measures this file).
func (m *Model) Save(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	le := binary.LittleEndian

	wu32 := func(v uint32) { binary.Write(bw, le, v) }
	wi32 := func(v int32) { binary.Write(bw, le, v) }
	wstr := func(s string) {
		wu32(uint32(len(s)))
		bw.WriteString(s)
	}
	wi32s := func(v []int32) {
		wu32(uint32(len(v)))
		binary.Write(bw, le, v)
	}
	wf32s := func(v []float32) {
		wu32(uint32(len(v)))
		binary.Write(bw, le, v)
	}

	wu32(magic)
	wu32(version)
	wstr(m.CircuitName)
	wi32(int32(m.L))
	binary.Write(bw, le, m.GateCount)
	wu32(boolU32(m.Merged))

	n := m.Net
	wi32(int32(n.NumPIs))
	wi32(int32(n.TotalUnits))
	wu32(uint32(len(n.Layers)))
	for i := range n.Layers {
		l := &n.Layers[i]
		wi32(n.SegStart[i])
		wu32(boolU32(l.Threshold))
		wi32(int32(l.W.Rows))
		wi32(int32(l.W.Cols))
		wi32s(l.W.RowPtr)
		wi32s(l.W.Col)
		wf32s(l.W.Val)
		wf32s(l.Bias)
	}

	wports := func(ports []PortMap) {
		wu32(uint32(len(ports)))
		for _, p := range ports {
			wstr(p.Name)
			wi32s(p.Units)
		}
	}
	wports(m.Inputs)
	wports(m.Outputs)

	wu32(uint32(len(m.Feedback)))
	for _, f := range m.Feedback {
		wi32(f.FromUnit)
		wi32(f.ToPI)
		wu32(boolU32(f.Init))
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func boolU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian

	var firstErr error
	ru32 := func() uint32 {
		var v uint32
		if err := binary.Read(br, le, &v); err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	ri32 := func() int32 { return int32(ru32()) }
	rstr := func() string {
		n := ru32()
		if firstErr != nil || n > 1<<20 {
			if firstErr == nil {
				firstErr = fmt.Errorf("nn: unreasonable string length %d", n)
			}
			return ""
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil && firstErr == nil {
			firstErr = err
		}
		return string(buf)
	}
	const maxElems = 1 << 28
	ri32s := func() []int32 {
		n := ru32()
		if firstErr != nil || n > maxElems {
			if firstErr == nil {
				firstErr = fmt.Errorf("nn: unreasonable array length %d", n)
			}
			return nil
		}
		v := make([]int32, n)
		if err := binary.Read(br, le, v); err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	rf32s := func() []float32 {
		n := ru32()
		if firstErr != nil || n > maxElems {
			if firstErr == nil {
				firstErr = fmt.Errorf("nn: unreasonable array length %d", n)
			}
			return nil
		}
		if n == 0 {
			return nil
		}
		v := make([]float32, n)
		if err := binary.Read(br, le, v); err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}

	if ru32() != magic {
		return nil, fmt.Errorf("nn: bad magic (not a C2NN model file)")
	}
	if v := ru32(); v != version {
		return nil, fmt.Errorf("nn: unsupported model version %d", v)
	}
	m := &Model{}
	m.CircuitName = rstr()
	m.L = int(ri32())
	if err := binary.Read(br, le, &m.GateCount); err != nil && firstErr == nil {
		firstErr = err
	}
	m.Merged = ru32() == 1

	n := &Network{}
	n.NumPIs = int(ri32())
	n.TotalUnits = int(ri32())
	numLayers := ru32()
	if numLayers > 1<<24 {
		return nil, fmt.Errorf("nn: unreasonable layer count %d", numLayers)
	}
	for i := uint32(0); i < numLayers; i++ {
		seg := ri32()
		thr := ru32() == 1
		rows := int(ri32())
		cols := int(ri32())
		w := &struct {
			RowPtr []int32
			Col    []int32
			Val    []float32
		}{ri32s(), ri32s(), rf32s()}
		bias := rf32s()
		if firstErr != nil {
			return nil, firstErr
		}
		layer := Layer{Threshold: thr, Bias: bias}
		layer.W = &tensor.CSR{Rows: rows, Cols: cols, RowPtr: w.RowPtr, Col: w.Col, Val: w.Val}
		if layer.W.Val == nil {
			layer.W.Val = []float32{}
		}
		n.Layers = append(n.Layers, layer)
		n.SegStart = append(n.SegStart, seg)
	}

	rports := func() []PortMap {
		cnt := ru32()
		if cnt > 1<<20 {
			if firstErr == nil {
				firstErr = fmt.Errorf("nn: unreasonable port count %d", cnt)
			}
			return nil
		}
		out := make([]PortMap, 0, cnt)
		for i := uint32(0); i < cnt; i++ {
			out = append(out, PortMap{Name: rstr(), Units: ri32s()})
		}
		return out
	}
	m.Inputs = rports()
	m.Outputs = rports()
	fbCnt := ru32()
	if fbCnt > 1<<24 {
		return nil, fmt.Errorf("nn: unreasonable feedback count %d", fbCnt)
	}
	for i := uint32(0); i < fbCnt; i++ {
		m.Feedback = append(m.Feedback, Feedback{
			FromUnit: ri32(), ToPI: ri32(), Init: ru32() == 1,
		})
	}
	if firstErr != nil {
		return nil, firstErr
	}
	m.Net = n
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveFile writes the model to a path and returns the file size.
func (m *Model) SaveFile(path string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := m.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// LoadFile reads a model from a path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// MemoryBytes reports the serialised model size without writing it out.
// It mirrors Save byte for byte (pinned by TestMemoryBytesMatchesSave).
func (m *Model) MemoryBytes() int64 {
	var n int64
	str := func(s string) { n += 4 + int64(len(s)) }
	arr := func(elems int) { n += 4 + 4*int64(elems) }

	n += 4 + 4 // magic, version
	str(m.CircuitName)
	n += 4 + 8 + 4 // L, gateCount, merged

	n += 4 + 4 + 4 // numPIs, totalUnits, layer count
	for i := range m.Net.Layers {
		l := &m.Net.Layers[i]
		n += 4 + 4 + 4 + 4 // segStart, threshold, rows, cols
		arr(len(l.W.RowPtr))
		arr(len(l.W.Col))
		arr(len(l.W.Val))
		arr(len(l.Bias))
	}
	for _, ports := range [][]PortMap{m.Inputs, m.Outputs} {
		n += 4
		for _, p := range ports {
			str(p.Name)
			arr(len(p.Units))
		}
	}
	n += 4 + 12*int64(len(m.Feedback))
	return n
}

// Guard against NaN weights sneaking in (would break the exactness
// argument of §III-E).
func (m *Model) CheckFinite() error {
	for li := range m.Net.Layers {
		l := &m.Net.Layers[li]
		for _, v := range l.W.Val {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return fmt.Errorf("nn: non-finite weight in layer %d", li)
			}
		}
	}
	return nil
}
