package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"c2nn/internal/gatesim"
	"c2nn/internal/lutmap"
	"c2nn/internal/netlist"
	"c2nn/internal/synth"
)

func compile(t *testing.T, src, top string, k int, merge bool) (*netlist.Netlist, *Model) {
	t.Helper()
	nl, err := synth.ElaborateSource(top, map[string]string{top + ".v": src})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	m, err := lutmap.MapNetlist(nl, lutmap.Options{K: k})
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	model, err := Build(nl, m, BuildOptions{Merge: merge, L: k})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return nl, model
}

// stepModel runs one clock cycle of the model with EvalSingle and
// returns the activation vector; state persists via qState.
func stepModel(model *Model, inputs map[string]uint64, qState []float32) []float32 {
	pis := make([]float32, model.Net.NumPIs)
	// Restore flip-flop state.
	for i, fb := range model.Feedback {
		pis[fb.ToPI-1] = qState[i]
	}
	for name, v := range inputs {
		pm := model.FindInput(name)
		for i, unit := range pm.Units {
			if v>>uint(i)&1 == 1 {
				pis[unit-1] = 1
			} else {
				pis[unit-1] = 0
			}
		}
	}
	acts := model.Net.EvalSingle(pis)
	for i, fb := range model.Feedback {
		qState[i] = acts[fb.FromUnit]
	}
	return acts
}

func peekModel(model *Model, acts []float32, name string) uint64 {
	pm := model.FindOutput(name)
	var v uint64
	for i, unit := range pm.Units {
		if acts[unit] > 0.5 && i < 64 {
			v |= 1 << uint(i)
		}
	}
	return v
}

const seqSrc = `
module seq(input clk, rst, input [1:0] op, input [7:0] a, b,
           output reg [15:0] acc, output [7:0] f);
  assign f = (a & b) ^ (a + b);
  always @(posedge clk) begin
    if (rst) acc <= 16'hFFFF;
    else begin
      case (op)
        2'd0: acc <= acc + {8'd0, a};
        2'd1: acc <= acc ^ {b, a};
        2'd2: acc <= {acc[14:0], acc[15] ^ acc[3]};
        default: acc <= acc;
      endcase
    end
  end
endmodule`

// The central §IV-A verification: NN outputs must be bit-identical to
// the gate-level simulator across random multi-cycle stimulus, for
// several L and both merged and unmerged networks.
func TestModelMatchesGatesim(t *testing.T) {
	for _, k := range []int{3, 5, 7} {
		for _, merge := range []bool{true, false} {
			nl, model := compile(t, seqSrc, "seq", k, merge)
			prog, err := gatesim.Compile(nl)
			if err != nil {
				t.Fatal(err)
			}
			ref := gatesim.NewSim(prog)
			qState := make([]float32, len(model.Feedback))
			for i, fb := range model.Feedback {
				if fb.Init {
					qState[i] = 1
				}
			}
			rng := rand.New(rand.NewSource(int64(k)))
			for cyc := 0; cyc < 120; cyc++ {
				in := map[string]uint64{
					"clk": 0,
					"rst": uint64(b2i(cyc == 0 || rng.Intn(50) == 0)),
					"op":  uint64(rng.Intn(4)),
					"a":   uint64(rng.Intn(256)),
					"b":   uint64(rng.Intn(256)),
				}
				for name, v := range in {
					ref.Poke(name, v)
				}
				ref.Step()
				ref.Eval()
				acts := stepModel(model, in, qState)
				// stepModel latches; to compare post-latch outputs,
				// re-evaluate with held inputs.
				acts = evalHeld(model, in, qState)
				for _, port := range []string{"acc", "f"} {
					want, _ := ref.Peek(port)
					got := peekModel(model, acts, port)
					if got != want {
						t.Fatalf("K=%d merge=%v cycle %d: %s = %#x, want %#x",
							k, merge, cyc, port, got, want)
					}
				}
			}
		}
	}
}

// evalHeld evaluates combinationally with current state, no latch.
func evalHeld(model *Model, inputs map[string]uint64, qState []float32) []float32 {
	pis := make([]float32, model.Net.NumPIs)
	for i, fb := range model.Feedback {
		pis[fb.ToPI-1] = qState[i]
	}
	for name, v := range inputs {
		pm := model.FindInput(name)
		for i, unit := range pm.Units {
			if v>>uint(i)&1 == 1 {
				pis[unit-1] = 1
			}
		}
	}
	return model.Net.EvalSingle(pis)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestMergeHalvesLayers(t *testing.T) {
	_, merged := compile(t, seqSrc, "seq", 4, true)
	_, unmerged := compile(t, seqSrc, "seq", 4, false)
	lm := len(merged.Net.Layers)
	lu := len(unmerged.Net.Layers)
	// merged = depth+1, unmerged = 2*depth+1.
	if lu != 2*(lm-1)+1 {
		t.Errorf("layers: merged=%d unmerged=%d (want unmerged = 2*depth+1)", lm, lu)
	}
}

func TestLayerCountDecreasesWithL(t *testing.T) {
	_, m3 := compile(t, seqSrc, "seq", 3, true)
	_, m8 := compile(t, seqSrc, "seq", 8, true)
	if len(m8.Net.Layers) >= len(m3.Net.Layers) {
		t.Errorf("layers: L=3 -> %d, L=8 -> %d", len(m3.Net.Layers), len(m8.Net.Layers))
	}
}

func TestConnectionsGrowWithL(t *testing.T) {
	_, m3 := compile(t, seqSrc, "seq", 3, true)
	_, m10 := compile(t, seqSrc, "seq", 10, true)
	c3 := m3.Net.ComputeStats().Connections
	c10 := m10.Net.ComputeStats().Connections
	if c10 <= c3 {
		t.Errorf("connections: L=3 -> %d, L=10 -> %d (expected growth)", c3, c10)
	}
}

func TestStatsAndSparsity(t *testing.T) {
	_, model := compile(t, seqSrc, "seq", 5, true)
	s := model.Net.ComputeStats()
	if s.Layers == 0 || s.Connections == 0 || s.Neurons == 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MeanSparsity <= 0.5 || s.MeanSparsity > 1 {
		t.Errorf("mean sparsity = %f", s.MeanSparsity)
	}
	if err := model.CheckFinite(); err != nil {
		t.Error(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	_, model := compile(t, seqSrc, "seq", 4, true)
	var buf bytes.Buffer
	nbytes, err := model.Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nbytes != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", nbytes, buf.Len())
	}
	if model.MemoryBytes() != nbytes {
		t.Errorf("MemoryBytes = %d, want %d", model.MemoryBytes(), nbytes)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CircuitName != model.CircuitName || got.L != model.L ||
		got.GateCount != model.GateCount || got.Merged != model.Merged {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if len(got.Net.Layers) != len(model.Net.Layers) ||
		got.Net.TotalUnits != model.Net.TotalUnits {
		t.Fatalf("network shape mismatch")
	}
	// Behaviour must match exactly.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		pis := make([]float32, model.Net.NumPIs)
		for i := range pis {
			pis[i] = float32(rng.Intn(2))
		}
		a := model.Net.EvalSingle(pis)
		b := got.Net.EvalSingle(pis)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("unit %d differs after reload", i)
			}
		}
	}
	// Port and feedback metadata.
	if len(got.Inputs) != len(model.Inputs) || len(got.Outputs) != len(model.Outputs) ||
		len(got.Feedback) != len(model.Feedback) {
		t.Fatal("port metadata lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestOutputsAreExactBinary(t *testing.T) {
	// The outputs of the linear layer must be exactly 0.0 or 1.0 — the
	// exactness property of §III-B3.
	_, model := compile(t, seqSrc, "seq", 6, true)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		pis := make([]float32, model.Net.NumPIs)
		for i := range pis {
			pis[i] = float32(rng.Intn(2))
		}
		acts := model.Net.EvalSingle(pis)
		for _, pm := range model.Outputs {
			for _, unit := range pm.Units {
				v := acts[unit]
				if v != 0 && v != 1 {
					t.Fatalf("output unit %d = %f (not exact)", unit, v)
				}
			}
		}
	}
}

func TestCombinationalOnly(t *testing.T) {
	src := `
module comb(input [3:0] a, b, output [3:0] y);
  assign y = (a ^ b) & (a | 4'h9);
endmodule`
	nl, model := compile(t, src, "comb", 4, true)
	if len(model.Feedback) != 0 {
		t.Fatal("combinational circuit has feedback")
	}
	prog, _ := gatesim.Compile(nl)
	ref := gatesim.NewSim(prog)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			ref.Poke("a", a)
			ref.Poke("b", b)
			ref.Eval()
			want, _ := ref.Peek("y")
			acts := evalHeld(model, map[string]uint64{"a": a, "b": b}, nil)
			if got := peekModel(model, acts, "y"); got != want {
				t.Fatalf("a=%d b=%d: %d != %d", a, b, got, want)
			}
		}
	}
}

// MemoryBytes must mirror Save exactly (it is computed analytically).
func TestMemoryBytesMatchesSave(t *testing.T) {
	for _, merge := range []bool{true, false} {
		_, model := compile(t, seqSrc, "seq", 5, merge)
		var buf bytes.Buffer
		n, err := model.Save(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got := model.MemoryBytes(); got != n {
			t.Fatalf("merge=%v: MemoryBytes=%d, Save wrote %d", merge, got, n)
		}
	}
}
