package netlist

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the netlist as a Graphviz digraph: inputs as
// triangles, gates as boxes labelled by kind, flip-flops as double
// boxes, outputs as inverted triangles. Intended for small circuits and
// documentation figures.
func (n *Netlist) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [fontsize=10];\n", sanitizeIdent(n.Name))

	src := make(map[NetID]string, n.numNets)
	src[ConstZero] = "const0"
	src[ConstOne] = "const1"
	b.WriteString("  const0 [label=\"0\" shape=plaintext];\n")
	b.WriteString("  const1 [label=\"1\" shape=plaintext];\n")

	for i := range n.Inputs {
		p := &n.Inputs[i]
		id := fmt.Sprintf("in_%s", sanitizeIdent(p.Name))
		fmt.Fprintf(&b, "  %s [label=\"%s[%d]\" shape=triangle color=blue];\n", id, p.Name, p.Width())
		for _, bit := range p.Bits {
			src[bit] = id
		}
	}
	for gi := range n.Gates {
		g := &n.Gates[gi]
		id := fmt.Sprintf("g%d", gi)
		fmt.Fprintf(&b, "  %s [label=\"%s\" shape=box];\n", id, g.Kind)
		src[g.Out] = id
	}
	for fi := range n.FFs {
		id := fmt.Sprintf("ff%d", fi)
		fmt.Fprintf(&b, "  %s [label=\"DFF\" shape=box peripheries=2 color=darkgreen];\n", id)
		src[n.FFs[fi].Q] = id
	}

	edge := func(from NetID, to string) {
		s, ok := src[from]
		if !ok {
			s = "undriven"
		}
		fmt.Fprintf(&b, "  %s -> %s;\n", s, to)
	}
	for gi := range n.Gates {
		g := &n.Gates[gi]
		for _, in := range g.Inputs() {
			edge(in, fmt.Sprintf("g%d", gi))
		}
	}
	for fi := range n.FFs {
		edge(n.FFs[fi].D, fmt.Sprintf("ff%d", fi))
	}
	for i := range n.Outputs {
		p := &n.Outputs[i]
		id := fmt.Sprintf("out_%s", sanitizeIdent(p.Name))
		fmt.Fprintf(&b, "  %s [label=\"%s[%d]\" shape=invtriangle color=red];\n", id, p.Name, p.Width())
		seen := map[string]bool{}
		for _, bit := range p.Bits {
			s, ok := src[bit]
			if ok && !seen[s] {
				seen[s] = true
				fmt.Fprintf(&b, "  %s -> %s;\n", s, id)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
