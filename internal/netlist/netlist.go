// Package netlist defines the gate-level intermediate representation used
// throughout the compiler: a flat network of single-output combinational
// gates, D flip-flops and named multi-bit ports.
//
// The representation corresponds to the circuit model of the paper
// (§II-B): a digital circuit is a function {0,1}^n -> {0,1}^m realised by
// a directed acyclic graph of Boolean gates, with flip-flops providing
// sequential state. Flip-flops are kept separate from the combinational
// gates so that the "flip-flop cut" transformation (§III-C) — exposing D
// pins as pseudo-outputs and Q pins as pseudo-inputs — is a view change
// rather than a rewrite.
package netlist

import (
	"fmt"
	"sort"
)

// NetID identifies a single-bit signal (a "net") in the netlist. IDs are
// dense, starting at 0. The zero and one constant nets are created by New
// and are always ConstZero and ConstOne.
type NetID int32

// InvalidNet is returned by lookups that fail and is never a valid net.
const InvalidNet NetID = -1

// GateKind enumerates the combinational gate primitives.
type GateKind uint8

// Gate primitives. Mux selects In[1] when In[0] is 0 and In[2] when
// In[0] is 1.
const (
	Buf GateKind = iota
	Not
	And
	Or
	Xor
	Nand
	Nor
	Xnor
	Mux
	numGateKinds
)

var gateKindNames = [...]string{
	Buf: "BUF", Not: "NOT", And: "AND", Or: "OR", Xor: "XOR",
	Nand: "NAND", Nor: "NOR", Xnor: "XNOR", Mux: "MUX",
}

// String returns the conventional upper-case name of the gate kind.
func (k GateKind) String() string {
	if int(k) < len(gateKindNames) {
		return gateKindNames[k]
	}
	return fmt.Sprintf("GateKind(%d)", uint8(k))
}

// Arity returns the number of inputs the gate kind consumes.
func (k GateKind) Arity() int {
	switch k {
	case Buf, Not:
		return 1
	case Mux:
		return 3
	default:
		return 2
	}
}

// Gate is a single-output combinational primitive.
type Gate struct {
	Kind GateKind
	Out  NetID
	In   [3]NetID // first Kind.Arity() entries are valid
}

// Inputs returns the valid input nets of the gate.
func (g *Gate) Inputs() []NetID { return g.In[:g.Kind.Arity()] }

// Eval computes the gate function over boolean input values. The slice
// must hold at least Arity values.
func (k GateKind) Eval(in []bool) bool {
	switch k {
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And:
		return in[0] && in[1]
	case Or:
		return in[0] || in[1]
	case Xor:
		return in[0] != in[1]
	case Nand:
		return !(in[0] && in[1])
	case Nor:
		return !(in[0] || in[1])
	case Xnor:
		return in[0] == in[1]
	case Mux:
		if in[0] {
			return in[2]
		}
		return in[1]
	}
	panic("netlist: invalid gate kind " + k.String())
}

// EvalWord computes the gate function bitwise over 64-bit lanes, used by
// the bit-parallel simulator.
func (k GateKind) EvalWord(in []uint64) uint64 {
	switch k {
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And:
		return in[0] & in[1]
	case Or:
		return in[0] | in[1]
	case Xor:
		return in[0] ^ in[1]
	case Nand:
		return ^(in[0] & in[1])
	case Nor:
		return ^(in[0] | in[1])
	case Xnor:
		return ^(in[0] ^ in[1])
	case Mux:
		return (in[1] &^ in[0]) | (in[2] & in[0])
	}
	panic("netlist: invalid gate kind " + k.String())
}

// FlipFlop is a D-type flip-flop referenced to the unified global clock
// (clock unification, paper §III-C). Init is the power-on/reset value of Q.
type FlipFlop struct {
	D    NetID
	Q    NetID
	Init bool
}

// Port is a named, ordered group of nets: Bits[0] is the least
// significant bit.
type Port struct {
	Name string
	Bits []NetID
}

// Width returns the number of bits in the port.
func (p *Port) Width() int { return len(p.Bits) }

// Netlist is a flat gate-level circuit. Net 0 is constant zero and net 1
// constant one; they have no driver gate.
type Netlist struct {
	Name    string
	numNets int
	names   map[NetID]string

	Gates   []Gate
	FFs     []FlipFlop
	Inputs  []Port
	Outputs []Port
}

// ConstZero and ConstOne are the dedicated constant nets present in every
// netlist created by New.
const (
	ConstZero NetID = 0
	ConstOne  NetID = 1
)

// New returns an empty netlist containing only the two constant nets.
func New(name string) *Netlist {
	return &Netlist{
		Name:    name,
		numNets: 2,
		names:   make(map[NetID]string),
	}
}

// NumNets returns the number of nets allocated, including the constants.
func (n *Netlist) NumNets() int { return n.numNets }

// NewNet allocates a fresh net and returns its ID.
func (n *Netlist) NewNet() NetID {
	id := NetID(n.numNets)
	n.numNets++
	return id
}

// NewNets allocates w fresh nets, returned LSB-first.
func (n *Netlist) NewNets(w int) []NetID {
	out := make([]NetID, w)
	for i := range out {
		out[i] = n.NewNet()
	}
	return out
}

// SetName attaches a debug name to a net. Names are advisory and need not
// be unique.
func (n *Netlist) SetName(id NetID, name string) { n.names[id] = name }

// NameOf returns the debug name of a net, or a synthesised placeholder.
func (n *Netlist) NameOf(id NetID) string {
	if s, ok := n.names[id]; ok {
		return s
	}
	switch id {
	case ConstZero:
		return "1'b0"
	case ConstOne:
		return "1'b1"
	}
	return fmt.Sprintf("n%d", id)
}

// AddGate appends a gate driving a fresh net and returns that net.
func (n *Netlist) AddGate(kind GateKind, in ...NetID) NetID {
	if len(in) != kind.Arity() {
		panic(fmt.Sprintf("netlist: %s expects %d inputs, got %d", kind, kind.Arity(), len(in)))
	}
	out := n.NewNet()
	g := Gate{Kind: kind, Out: out}
	copy(g.In[:], in)
	n.Gates = append(n.Gates, g)
	return out
}

// AddGateOut appends a gate driving an existing net (which must not have
// another driver; Validate checks this).
func (n *Netlist) AddGateOut(kind GateKind, out NetID, in ...NetID) {
	if len(in) != kind.Arity() {
		panic(fmt.Sprintf("netlist: %s expects %d inputs, got %d", kind, kind.Arity(), len(in)))
	}
	g := Gate{Kind: kind, Out: out}
	copy(g.In[:], in)
	n.Gates = append(n.Gates, g)
}

// AddFF appends a flip-flop with output net Q driven from D.
func (n *Netlist) AddFF(d, q NetID, init bool) {
	n.FFs = append(n.FFs, FlipFlop{D: d, Q: q, Init: init})
}

// AddInput declares a new input port of the given width and returns its
// nets LSB-first.
func (n *Netlist) AddInput(name string, width int) []NetID {
	bits := n.NewNets(width)
	n.Inputs = append(n.Inputs, Port{Name: name, Bits: bits})
	for i, b := range bits {
		if width == 1 {
			n.SetName(b, name)
		} else {
			n.SetName(b, fmt.Sprintf("%s[%d]", name, i))
		}
	}
	return bits
}

// AddOutput declares an output port over existing nets (LSB-first).
func (n *Netlist) AddOutput(name string, bits []NetID) {
	cp := make([]NetID, len(bits))
	copy(cp, bits)
	n.Outputs = append(n.Outputs, Port{Name: name, Bits: cp})
}

// FindInput returns the input port with the given name, or nil.
func (n *Netlist) FindInput(name string) *Port {
	for i := range n.Inputs {
		if n.Inputs[i].Name == name {
			return &n.Inputs[i]
		}
	}
	return nil
}

// FindOutput returns the output port with the given name, or nil.
func (n *Netlist) FindOutput(name string) *Port {
	for i := range n.Outputs {
		if n.Outputs[i].Name == name {
			return &n.Outputs[i]
		}
	}
	return nil
}

// NumGates returns the number of combinational gates.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// NumFFs returns the number of flip-flops.
func (n *Netlist) NumFFs() int { return len(n.FFs) }

// GateCount reports gates including flip-flops, the size metric used in
// Table I of the paper.
func (n *Netlist) GateCount() int { return len(n.Gates) + len(n.FFs) }

// InputBits returns the total number of primary input bits.
func (n *Netlist) InputBits() int {
	t := 0
	for i := range n.Inputs {
		t += len(n.Inputs[i].Bits)
	}
	return t
}

// OutputBits returns the total number of primary output bits.
func (n *Netlist) OutputBits() int {
	t := 0
	for i := range n.Outputs {
		t += len(n.Outputs[i].Bits)
	}
	return t
}

// CombInputs returns the nets that act as inputs of the combinational
// core: the constants, all primary input bits and all flip-flop Q pins
// (the pseudo-inputs of the flip-flop cut, paper §III-C).
func (n *Netlist) CombInputs() []NetID {
	out := []NetID{ConstZero, ConstOne}
	for i := range n.Inputs {
		out = append(out, n.Inputs[i].Bits...)
	}
	for i := range n.FFs {
		out = append(out, n.FFs[i].Q)
	}
	return out
}

// CombOutputs returns the nets that must be computed by the combinational
// core each cycle: all primary output bits and all flip-flop D pins (the
// pseudo-outputs of the flip-flop cut).
func (n *Netlist) CombOutputs() []NetID {
	var out []NetID
	for i := range n.Outputs {
		out = append(out, n.Outputs[i].Bits...)
	}
	for i := range n.FFs {
		out = append(out, n.FFs[i].D)
	}
	return out
}

// DriverIndex builds a map from net to the index of its driving gate in
// Gates, with -1 for nets driven by inputs, constants or flip-flops.
func (n *Netlist) DriverIndex() []int32 {
	drv := make([]int32, n.numNets)
	for i := range drv {
		drv[i] = -1
	}
	for i := range n.Gates {
		drv[n.Gates[i].Out] = int32(i)
	}
	return drv
}

// SortPorts orders input and output ports by name, giving the netlist a
// canonical external interface.
func (n *Netlist) SortPorts() {
	sort.Slice(n.Inputs, func(i, j int) bool { return n.Inputs[i].Name < n.Inputs[j].Name })
	sort.Slice(n.Outputs, func(i, j int) bool { return n.Outputs[i].Name < n.Outputs[j].Name })
}
