package netlist

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	n := New("dot demo")
	a := n.AddInput("a", 2)
	x := n.AddGate(Xor, a[0], a[1])
	q := n.NewNet()
	n.AddFF(x, q, false)
	o := n.AddGate(And, q, a[0])
	n.AddOutput("y", []NetID{o})

	var sb strings.Builder
	if err := n.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph \"dot_demo\"",
		"in_a", "out_y", "XOR", "AND", "DFF",
		"g0 -> ff0", "in_a -> g0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in DOT output:\n%s", want, out)
		}
	}
}

func TestWriteVerilogSmoke(t *testing.T) {
	// Structural round-trip behaviour is tested at the repository root;
	// this covers the emitter shape within the package.
	n := New("w")
	a := n.AddInput("a", 1)
	q := n.NewNet()
	d := n.AddGate(Not, q)
	n.AddFF(d, q, false)
	o := n.AddGate(Or, q, a[0])
	n.AddOutput("y", []NetID{o})

	var sb strings.Builder
	if err := n.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"module w", "input  wire a", "input  wire clk",
		"always @(posedge clk)", "endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in Verilog output:\n%s", want, out)
		}
	}
}
