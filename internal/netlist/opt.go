package netlist

// OptResult reports the effect of an optimisation pass.
type OptResult struct {
	GatesBefore int
	GatesAfter  int
	Folded      int // gates removed by constant folding / identities
	Deduped     int // gates removed by structural hashing
	Dead        int // gates removed as unreachable from outputs
}

type gateKey struct {
	kind    GateKind
	a, b, c NetID
}

// Optimize simplifies the combinational core in place: constant folding,
// algebraic identities (x AND x = x, x XOR x = 0, BUF chains, double
// negation, mux with constant select, ...), structural hashing of
// identical gates, and dead-gate elimination. Port and flip-flop nets are
// preserved. The pass keeps the netlist functionally identical; it exists
// because bit-blasting during synthesis produces many trivially
// redundant gates, and a smaller netlist means a smaller AIG, fewer LUTs
// and ultimately a smaller neural network.
func (n *Netlist) Optimize() (OptResult, error) {
	res := OptResult{GatesBefore: len(n.Gates)}
	lev, err := n.Levelize()
	if err != nil {
		return res, err
	}

	// repl maps a net to its canonical replacement.
	repl := make([]NetID, n.numNets)
	for i := range repl {
		repl[i] = NetID(i)
	}
	resolve := func(id NetID) NetID {
		for repl[id] != id {
			repl[id] = repl[repl[id]] // path halving
			id = repl[id]
		}
		return id
	}

	hash := make(map[gateKey]NetID, len(n.Gates))
	kept := make([]Gate, 0, len(n.Gates))

	for _, gi := range lev.Order {
		g := n.Gates[gi]
		var in [3]NetID
		for i, x := range g.Inputs() {
			in[i] = resolve(x)
		}
		out, folded := foldGate(g.Kind, in)
		if folded {
			repl[g.Out] = out
			res.Folded++
			continue
		}
		// Canonicalise commutative gate input order for hashing.
		key := gateKey{kind: g.Kind, a: in[0], b: in[1], c: in[2]}
		switch g.Kind {
		case And, Or, Xor, Nand, Nor, Xnor:
			if key.a > key.b {
				key.a, key.b = key.b, key.a
			}
		}
		if prev, ok := hash[key]; ok {
			repl[g.Out] = prev
			res.Deduped++
			continue
		}
		hash[key] = g.Out
		ng := Gate{Kind: g.Kind, Out: g.Out}
		copy(ng.In[:], in[:g.Kind.Arity()])
		kept = append(kept, ng)
	}

	// Rewrite port and flip-flop references through the replacement map.
	for pi := range n.Outputs {
		for bi, b := range n.Outputs[pi].Bits {
			n.Outputs[pi].Bits[bi] = resolve(b)
		}
	}
	for fi := range n.FFs {
		n.FFs[fi].D = resolve(n.FFs[fi].D)
		// Q pins are drivers, never replaced.
	}

	// Dead-gate elimination: walk back from combinational outputs.
	drvOf := make(map[NetID]int32, len(kept))
	for i := range kept {
		drvOf[kept[i].Out] = int32(i)
	}
	live := make([]bool, len(kept))
	var stack []NetID
	stack = append(stack, n.CombOutputs()...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		gi, ok := drvOf[id]
		if !ok || live[gi] {
			continue
		}
		live[gi] = true
		stack = append(stack, kept[gi].Inputs()...)
	}
	final := kept[:0]
	for i := range kept {
		if live[i] {
			final = append(final, kept[i])
		} else {
			res.Dead++
		}
	}
	n.Gates = final
	res.GatesAfter = len(n.Gates)
	return res, nil
}

// foldGate applies constant folding and algebraic identities. It returns
// the replacement net and true when the gate can be removed.
func foldGate(kind GateKind, in [3]NetID) (NetID, bool) {
	isC := func(id NetID) bool { return id == ConstZero || id == ConstOne }
	val := func(id NetID) bool { return id == ConstOne }

	switch kind {
	case Buf:
		return in[0], true
	case Not:
		if isC(in[0]) {
			if val(in[0]) {
				return ConstZero, true
			}
			return ConstOne, true
		}
	case And, Nand:
		a, b := in[0], in[1]
		neg := kind == Nand
		if isC(a) || isC(b) || a == b {
			var r NetID
			switch {
			case isC(a) && isC(b):
				r = boolNet(val(a) && val(b))
			case isC(a) && !val(a), isC(b) && !val(b):
				r = ConstZero
			case isC(a) && val(a):
				r = b
			case isC(b) && val(b):
				r = a
			default: // a == b
				r = a
			}
			if neg {
				return negNet(r)
			}
			return r, true
		}
	case Or, Nor:
		a, b := in[0], in[1]
		neg := kind == Nor
		if isC(a) || isC(b) || a == b {
			var r NetID
			switch {
			case isC(a) && isC(b):
				r = boolNet(val(a) || val(b))
			case isC(a) && val(a), isC(b) && val(b):
				r = ConstOne
			case isC(a) && !val(a):
				r = b
			case isC(b) && !val(b):
				r = a
			default:
				r = a
			}
			if neg {
				return negNet(r)
			}
			return r, true
		}
	case Xor, Xnor:
		a, b := in[0], in[1]
		neg := kind == Xnor
		if a == b {
			if neg {
				return ConstOne, true
			}
			return ConstZero, true
		}
		if isC(a) && isC(b) {
			r := boolNet(val(a) != val(b))
			if neg {
				return negNet(r)
			}
			return r, true
		}
		// XOR with constant 0 is a buffer; with constant 1 it is NOT,
		// which is not removable without allocating a gate, so only the
		// zero cases fold.
		if isC(a) && !val(a) != neg {
			return b, true
		}
		if isC(b) && !val(b) != neg {
			return a, true
		}
	case Mux:
		s, d0, d1 := in[0], in[1], in[2]
		if isC(s) {
			if val(s) {
				return d1, true
			}
			return d0, true
		}
		if d0 == d1 {
			return d0, true
		}
	}
	return InvalidNet, false
}

func boolNet(v bool) NetID {
	if v {
		return ConstOne
	}
	return ConstZero
}

// negNet folds NOT over a constant; for non-constants it reports the
// gate as non-foldable.
func negNet(id NetID) (NetID, bool) {
	switch id {
	case ConstZero:
		return ConstOne, true
	case ConstOne:
		return ConstZero, true
	}
	return InvalidNet, false
}
