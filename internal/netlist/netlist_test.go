package netlist

import (
	"testing"
	"testing/quick"
)

func TestGateKindEval(t *testing.T) {
	cases := []struct {
		kind GateKind
		in   []bool
		want bool
	}{
		{Buf, []bool{true}, true},
		{Buf, []bool{false}, false},
		{Not, []bool{true}, false},
		{Not, []bool{false}, true},
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{Or, []bool{false, false}, false},
		{Or, []bool{true, false}, true},
		{Xor, []bool{true, true}, false},
		{Xor, []bool{true, false}, true},
		{Nand, []bool{true, true}, false},
		{Nand, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Nor, []bool{true, false}, false},
		{Xnor, []bool{true, true}, true},
		{Xnor, []bool{true, false}, false},
		{Mux, []bool{false, true, false}, true},
		{Mux, []bool{true, true, false}, false},
		{Mux, []bool{false, false, true}, false},
		{Mux, []bool{true, false, true}, true},
	}
	for _, c := range cases {
		if got := c.kind.Eval(c.in); got != c.want {
			t.Errorf("%s.Eval(%v) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

// EvalWord must agree with Eval on every lane.
func TestEvalWordMatchesEval(t *testing.T) {
	for k := Buf; k < numGateKinds; k++ {
		ar := k.Arity()
		for pattern := 0; pattern < 1<<ar; pattern++ {
			bits := make([]bool, ar)
			words := make([]uint64, ar)
			for i := 0; i < ar; i++ {
				bits[i] = pattern>>i&1 == 1
				if bits[i] {
					words[i] = ^uint64(0)
				}
			}
			want := k.Eval(bits)
			got := k.EvalWord(words)
			if want && got != ^uint64(0) || !want && got != 0 {
				t.Errorf("%s pattern %b: Eval=%v EvalWord=%x", k, pattern, want, got)
			}
		}
	}
}

func TestArity(t *testing.T) {
	if Buf.Arity() != 1 || Not.Arity() != 1 {
		t.Error("unary gates must have arity 1")
	}
	if And.Arity() != 2 || Xnor.Arity() != 2 {
		t.Error("binary gates must have arity 2")
	}
	if Mux.Arity() != 3 {
		t.Error("mux must have arity 3")
	}
}

// buildFullAdder constructs a 1-bit full adder: sum = a^b^cin,
// cout = ab | cin(a^b).
func buildFullAdder(t *testing.T) (*Netlist, []NetID) {
	t.Helper()
	n := New("fa")
	a := n.AddInput("a", 1)[0]
	b := n.AddInput("b", 1)[0]
	cin := n.AddInput("cin", 1)[0]
	axb := n.AddGate(Xor, a, b)
	sum := n.AddGate(Xor, axb, cin)
	ab := n.AddGate(And, a, b)
	cax := n.AddGate(And, cin, axb)
	cout := n.AddGate(Or, ab, cax)
	n.AddOutput("sum", []NetID{sum})
	n.AddOutput("cout", []NetID{cout})
	return n, []NetID{a, b, cin}
}

func TestLevelizeFullAdder(t *testing.T) {
	n, _ := buildFullAdder(t)
	lev, err := n.Levelize()
	if err != nil {
		t.Fatalf("Levelize: %v", err)
	}
	if lev.Depth != 3 {
		t.Errorf("depth = %d, want 3", lev.Depth)
	}
	if len(lev.Order) != len(n.Gates) {
		t.Fatalf("order covers %d gates, want %d", len(lev.Order), len(n.Gates))
	}
	// Every gate appears after its input drivers.
	pos := make(map[int32]int)
	for i, gi := range lev.Order {
		pos[gi] = i
	}
	drv := n.DriverIndex()
	for _, gi := range lev.Order {
		for _, in := range n.Gates[gi].Inputs() {
			if di := drv[in]; di >= 0 && pos[di] >= pos[gi] {
				t.Fatalf("gate %d ordered before its input driver %d", gi, di)
			}
		}
	}
	// Level grouping must be consistent with GateLevel.
	for l := int32(1); l <= lev.Depth; l++ {
		for _, gi := range lev.GatesAtLevel(l) {
			if lev.GateLevel[gi] != l {
				t.Errorf("gate %d in level bucket %d but has level %d", gi, l, lev.GateLevel[gi])
			}
		}
	}
}

func TestLevelizeDetectsCycle(t *testing.T) {
	n := New("cyc")
	a := n.AddInput("a", 1)[0]
	x := n.NewNet()
	y := n.AddGate(And, a, x)
	n.AddGateOut(Or, x, y, a)
	n.AddOutput("o", []NetID{y})
	if _, err := n.Levelize(); err == nil {
		t.Fatal("Levelize accepted a combinational cycle")
	}
}

func TestLevelizeUndrivenInput(t *testing.T) {
	n := New("undriven")
	a := n.AddInput("a", 1)[0]
	ghost := n.NewNet()
	o := n.AddGate(And, a, ghost)
	n.AddOutput("o", []NetID{o})
	if _, err := n.Levelize(); err == nil {
		t.Fatal("Levelize accepted a gate reading an undriven net")
	}
}

func TestValidateGood(t *testing.T) {
	n, _ := buildFullAdder(t)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateMultipleDrivers(t *testing.T) {
	n := New("multi")
	a := n.AddInput("a", 1)[0]
	x := n.AddGate(Not, a)
	n.AddGateOut(Buf, x, a)
	n.AddOutput("o", []NetID{x})
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted multiple drivers")
	}
}

func TestValidateUndrivenOutput(t *testing.T) {
	n := New("uo")
	n.AddInput("a", 1)
	ghost := n.NewNet()
	n.AddOutput("o", []NetID{ghost})
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted undriven output")
	}
}

func TestValidateUndrivenFFD(t *testing.T) {
	n := New("ff")
	d := n.NewNet()
	q := n.NewNet()
	n.AddFF(d, q, false)
	n.AddOutput("o", []NetID{q})
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted undriven flip-flop D pin")
	}
}

func TestFlipFlopBreaksCycle(t *testing.T) {
	// q feeds back through an inverter into its own D: a T-flip-flop.
	// The flip-flop cut makes this acyclic.
	n := New("toggle")
	q := n.NewNet()
	d := n.AddGate(Not, q)
	n.AddFF(d, q, false)
	n.AddOutput("o", []NetID{q})
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	lev, err := n.Levelize()
	if err != nil {
		t.Fatalf("Levelize: %v", err)
	}
	if lev.Depth != 1 {
		t.Errorf("depth = %d, want 1", lev.Depth)
	}
}

func TestCombInputsOutputs(t *testing.T) {
	n := New("seq")
	a := n.AddInput("a", 2)
	q := n.NewNet()
	d := n.AddGate(And, a[0], a[1])
	n.AddFF(d, q, false)
	o := n.AddGate(Or, q, a[0])
	n.AddOutput("o", []NetID{o})

	ci := n.CombInputs()
	want := map[NetID]bool{ConstZero: true, ConstOne: true, a[0]: true, a[1]: true, q: true}
	if len(ci) != len(want) {
		t.Fatalf("CombInputs = %v", ci)
	}
	for _, id := range ci {
		if !want[id] {
			t.Errorf("unexpected comb input %d", id)
		}
	}
	co := n.CombOutputs()
	wantOut := map[NetID]bool{o: true, d: true}
	if len(co) != len(wantOut) {
		t.Fatalf("CombOutputs = %v", co)
	}
	for _, id := range co {
		if !wantOut[id] {
			t.Errorf("unexpected comb output %d", id)
		}
	}
}

func TestStats(t *testing.T) {
	n, _ := buildFullAdder(t)
	s := n.ComputeStats()
	if s.Gates != 5 || s.FFs != 0 || s.GateCount != 5 {
		t.Errorf("stats gates=%d ffs=%d total=%d", s.Gates, s.FFs, s.GateCount)
	}
	if s.Inputs != 3 || s.Outputs != 2 {
		t.Errorf("stats in=%d out=%d", s.Inputs, s.Outputs)
	}
	if s.Depth != 3 {
		t.Errorf("stats depth=%d", s.Depth)
	}
	if s.ByKind[Xor] != 2 || s.ByKind[And] != 2 || s.ByKind[Or] != 1 {
		t.Errorf("stats by kind: %v", s.ByKind)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

// evalComb computes the value of every net of a purely combinational
// netlist under the given primary-input assignment. Used as a test oracle.
func evalComb(t *testing.T, n *Netlist, inputs map[NetID]bool) []bool {
	t.Helper()
	lev, err := n.Levelize()
	if err != nil {
		t.Fatalf("Levelize: %v", err)
	}
	vals := make([]bool, n.NumNets())
	vals[ConstOne] = true
	for id, v := range inputs {
		vals[id] = v
	}
	var inBuf [3]bool
	for _, gi := range lev.Order {
		g := &n.Gates[gi]
		for i, in := range g.Inputs() {
			inBuf[i] = vals[in]
		}
		vals[g.Out] = g.Kind.Eval(inBuf[:g.Kind.Arity()])
	}
	return vals
}

func TestFullAdderTruth(t *testing.T) {
	n, in := buildFullAdder(t)
	sum := n.FindOutput("sum").Bits[0]
	cout := n.FindOutput("cout").Bits[0]
	for p := 0; p < 8; p++ {
		a, b, c := p&1 == 1, p>>1&1 == 1, p>>2&1 == 1
		vals := evalComb(t, n, map[NetID]bool{in[0]: a, in[1]: b, in[2]: c})
		cnt := 0
		for _, v := range []bool{a, b, c} {
			if v {
				cnt++
			}
		}
		if vals[sum] != (cnt%2 == 1) {
			t.Errorf("sum(%v,%v,%v) = %v", a, b, c, vals[sum])
		}
		if vals[cout] != (cnt >= 2) {
			t.Errorf("cout(%v,%v,%v) = %v", a, b, c, vals[cout])
		}
	}
}

func TestOptimizeConstFold(t *testing.T) {
	n := New("fold")
	a := n.AddInput("a", 1)[0]
	// (a AND 1) OR (a AND 0) == a
	x := n.AddGate(And, a, ConstOne)
	y := n.AddGate(And, a, ConstZero)
	o := n.AddGate(Or, x, y)
	n.AddOutput("o", []NetID{o})
	res, err := n.Optimize()
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.GatesAfter != 0 {
		t.Errorf("expected full fold, %d gates remain (%+v)", res.GatesAfter, res)
	}
	if got := n.FindOutput("o").Bits[0]; got != a {
		t.Errorf("output rewired to %d, want input net %d", got, a)
	}
}

func TestOptimizeDedup(t *testing.T) {
	n := New("dedup")
	a := n.AddInput("a", 1)[0]
	b := n.AddInput("b", 1)[0]
	x := n.AddGate(And, a, b)
	y := n.AddGate(And, b, a) // commutative duplicate
	o := n.AddGate(Xor, x, y) // x == y after dedup -> folds to 0
	n.AddOutput("o", []NetID{o})
	res, err := n.Optimize()
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.GatesAfter != 0 {
		t.Errorf("gates after = %d, want 0 (%+v)", res.GatesAfter, res)
	}
	if got := n.FindOutput("o").Bits[0]; got != ConstZero {
		t.Errorf("output = %d, want const zero", got)
	}
}

func TestOptimizeDeadCode(t *testing.T) {
	n := New("dead")
	a := n.AddInput("a", 1)[0]
	b := n.AddInput("b", 1)[0]
	n.AddGate(Xor, a, b) // unused
	o := n.AddGate(And, a, b)
	n.AddOutput("o", []NetID{o})
	res, err := n.Optimize()
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Dead != 1 || res.GatesAfter != 1 {
		t.Errorf("dead=%d after=%d, want 1/1", res.Dead, res.GatesAfter)
	}
}

// Property: Optimize preserves the function of a random combinational
// netlist on random inputs.
func TestOptimizePreservesFunction(t *testing.T) {
	type seedCase struct {
		Seed  int64
		Probe uint64
	}
	f := func(c seedCase) bool {
		n, ins := randomComb(c.Seed, 6, 40)
		outs := n.FindOutput("o").Bits
		assign := make(map[NetID]bool)
		for i, in := range ins {
			assign[in] = c.Probe>>uint(i)&1 == 1
		}
		before := evalComb(t, n, assign)
		wantVals := make([]bool, len(outs))
		for i, o := range outs {
			wantVals[i] = before[o]
		}
		if _, err := n.Optimize(); err != nil {
			t.Logf("Optimize: %v", err)
			return false
		}
		after := evalComb(t, n, assign)
		outs = n.FindOutput("o").Bits
		for i, o := range outs {
			if after[o] != wantVals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomComb builds a pseudo-random combinational netlist with nIn inputs
// and nGates gates; the last min(8, nGates) gate outputs form port "o".
func randomComb(seed int64, nIn, nGates int) (*Netlist, []NetID) {
	n := New("rand")
	rng := seed
	next := func(mod int) int {
		// xorshift64
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if rng < 0 {
			rng = -rng
		}
		if mod <= 0 {
			return 0
		}
		return int(rng % int64(mod))
	}
	if seed == 0 {
		rng = 1
	}
	ins := n.AddInput("in", nIn)
	pool := append([]NetID{ConstZero, ConstOne}, ins...)
	for i := 0; i < nGates; i++ {
		kind := GateKind(next(int(numGateKinds)))
		args := make([]NetID, kind.Arity())
		for j := range args {
			args[j] = pool[next(len(pool))]
		}
		pool = append(pool, n.AddGate(kind, args...))
	}
	nOut := 8
	if nGates < nOut {
		nOut = nGates
	}
	n.AddOutput("o", pool[len(pool)-nOut:])
	return n, ins
}
