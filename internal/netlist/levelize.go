package netlist

import "fmt"

// Levelization is a topological ordering of the combinational gates of a
// netlist, grouped into levels. Level 0 consists of the combinational
// inputs (constants, primary inputs, flip-flop Q pins); a gate's level is
// 1 + max level of its inputs. Levelization is the basis of both the
// baseline cycle simulator and the layered construction of the neural
// network (paper §III-B3).
type Levelization struct {
	// Order holds indices into Netlist.Gates in a valid topological
	// evaluation order.
	Order []int32
	// GateLevel[i] is the level of Gates[i].
	GateLevel []int32
	// NetLevel[id] is the level of net id (0 for combinational inputs).
	NetLevel []int32
	// Depth is the maximum gate level (0 for a netlist with no gates).
	Depth int32
	// LevelStart[l] .. LevelStart[l+1] delimit the gates of level l+1 in
	// Order (level numbering of gates starts at 1).
	LevelStart []int32
}

// Levelize topologically sorts the combinational gates. It returns an
// error if the combinational core contains a cycle (which indicates an
// improperly designed circuit whose feedback is not broken by flip-flops,
// cf. paper §III-C) or if a gate reads an undriven net.
func (n *Netlist) Levelize() (*Levelization, error) {
	drv := n.DriverIndex()
	driven := make([]bool, n.numNets)
	driven[ConstZero] = true
	driven[ConstOne] = true
	for i := range n.Inputs {
		for _, b := range n.Inputs[i].Bits {
			driven[b] = true
		}
	}
	for i := range n.FFs {
		driven[n.FFs[i].Q] = true
	}

	lev := &Levelization{
		GateLevel: make([]int32, len(n.Gates)),
		NetLevel:  make([]int32, n.numNets),
		Order:     make([]int32, 0, len(n.Gates)),
	}

	// Iterative DFS post-order over gate dependencies.
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := make([]uint8, len(n.Gates))
	var stack []int32

	visit := func(root int32) error {
		if state[root] != unvisited {
			return nil
		}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			gi := stack[len(stack)-1]
			if state[gi] == done {
				stack = stack[:len(stack)-1]
				continue
			}
			if state[gi] == unvisited {
				state[gi] = onStack
			}
			g := &n.Gates[gi]
			progressed := false
			var maxIn int32
			for _, in := range g.Inputs() {
				di := drv[in]
				if di < 0 {
					if !driven[in] {
						return fmt.Errorf("netlist %q: gate %s output %s reads undriven net %s",
							n.Name, g.Kind, n.NameOf(g.Out), n.NameOf(in))
					}
					continue // combinational input, level 0
				}
				switch state[di] {
				case unvisited:
					stack = append(stack, di)
					progressed = true
				case onStack:
					return fmt.Errorf("netlist %q: combinational cycle through net %s",
						n.Name, n.NameOf(n.Gates[di].Out))
				case done:
					if l := lev.GateLevel[di]; l > maxIn {
						maxIn = l
					}
				}
			}
			if progressed {
				continue
			}
			// All inputs resolved.
			lev.GateLevel[gi] = maxIn + 1
			lev.NetLevel[g.Out] = maxIn + 1
			state[gi] = done
			lev.Order = append(lev.Order, gi)
			stack = stack[:len(stack)-1]
		}
		return nil
	}

	for gi := range n.Gates {
		if err := visit(int32(gi)); err != nil {
			return nil, err
		}
	}

	for _, l := range lev.GateLevel {
		if l > lev.Depth {
			lev.Depth = l
		}
	}

	// Re-sort Order by level (stable within DFS order) and compute level
	// boundaries. Counting sort keeps this O(gates + depth).
	counts := make([]int32, lev.Depth+1)
	for _, gi := range lev.Order {
		counts[lev.GateLevel[gi]]++
	}
	lev.LevelStart = make([]int32, lev.Depth+1)
	var acc int32
	for l := int32(1); l <= lev.Depth; l++ {
		lev.LevelStart[l-1] = acc
		acc += counts[l]
	}
	if lev.Depth > 0 {
		lev.LevelStart[lev.Depth] = acc
	}
	pos := make([]int32, lev.Depth+1)
	copy(pos, lev.LevelStart)
	sorted := make([]int32, len(lev.Order))
	for _, gi := range lev.Order {
		l := lev.GateLevel[gi] - 1
		sorted[pos[l]] = gi
		pos[l]++
	}
	lev.Order = sorted
	return lev, nil
}

// GatesAtLevel returns the gate indices at the given 1-based level.
func (l *Levelization) GatesAtLevel(level int32) []int32 {
	if level < 1 || level > l.Depth {
		return nil
	}
	start := l.LevelStart[level-1]
	var end int32
	if level == l.Depth {
		end = int32(len(l.Order))
	} else {
		end = l.LevelStart[level]
	}
	return l.Order[start:end]
}
