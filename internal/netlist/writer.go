package netlist

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteVerilog emits the netlist as flat structural Verilog-2005: one
// continuous assignment per gate and one always block per flip-flop,
// with a single `clk` input appended for sequential designs. The output
// is valid input for this repository's own frontend (round-tripping is
// tested) and for external tools.
func (n *Netlist) WriteVerilog(w io.Writer) error {
	var b strings.Builder

	name := sanitizeIdent(n.Name)
	fmt.Fprintf(&b, "// Structural netlist emitted by c2nn (%d gates, %d FFs).\n", len(n.Gates), len(n.FFs))
	fmt.Fprintf(&b, "module %s (\n", name)

	type portDecl struct {
		dir   string
		name  string
		width int
	}
	var ports []portDecl
	used := map[string]bool{}
	for i := range n.Inputs {
		p := &n.Inputs[i]
		pn := sanitizeIdent(p.Name)
		ports = append(ports, portDecl{"input", pn, p.Width()})
		used[pn] = true
	}
	addedClk := false
	if len(n.FFs) > 0 && !used["clk"] {
		ports = append(ports, portDecl{"input", "clk", 1})
		used["clk"] = true
		addedClk = true
	}
	for i := range n.Outputs {
		p := &n.Outputs[i]
		pn := sanitizeIdent(p.Name)
		if used[pn] {
			pn = pn + "_o"
		}
		ports = append(ports, portDecl{"output", pn, p.Width()})
		used[pn] = true
	}
	for i, p := range ports {
		sep := ","
		if i == len(ports)-1 {
			sep = ""
		}
		if p.width == 1 {
			fmt.Fprintf(&b, "    %-6s wire %s%s\n", p.dir, p.name, sep)
		} else {
			fmt.Fprintf(&b, "    %-6s wire [%d:0] %s%s\n", p.dir, p.width-1, p.name, sep)
		}
	}
	b.WriteString(");\n\n")

	// Net naming: ports keep their bit names, everything else is n<id>.
	netName := make(map[NetID]string, n.numNets)
	netName[ConstZero] = "1'b0"
	netName[ConstOne] = "1'b1"
	bindPort := func(p *Port, name string) {
		for i, bit := range p.Bits {
			if p.Width() == 1 {
				netName[bit] = name
			} else {
				netName[bit] = fmt.Sprintf("%s[%d]", name, i)
			}
		}
	}
	pi := 0
	for i := range n.Inputs {
		bindPort(&n.Inputs[i], ports[pi].name)
		pi++
	}
	if addedClk {
		pi++ // skip the synthesised clk port
	}
	nameOf := func(id NetID) string {
		if s, ok := netName[id]; ok {
			return s
		}
		s := fmt.Sprintf("n%d", id)
		netName[id] = s
		return s
	}
	isFF := make(map[NetID]bool, len(n.FFs))
	for i := range n.FFs {
		isFF[n.FFs[i].Q] = true
	}
	// Output ports may alias internal nets that already have names (an
	// output wired to an input) or flip-flop Q pins (which must stay
	// regs driven by the always block); emit assigns for those instead
	// of binding the port name to the net.
	type outAlias struct{ port, src string }
	var aliases []outAlias
	portBound := make(map[NetID]bool)
	for i := range n.Inputs {
		for _, bit := range n.Inputs[i].Bits {
			portBound[bit] = true
		}
	}
	for i := range n.Outputs {
		p := &n.Outputs[i]
		pname := ports[pi].name
		pi++
		for bi, bit := range p.Bits {
			ref := pname
			if p.Width() > 1 {
				ref = fmt.Sprintf("%s[%d]", pname, bi)
			}
			_, named := netName[bit]
			if named || isFF[bit] {
				aliases = append(aliases, outAlias{port: ref, src: nameOf(bit)})
			} else {
				netName[bit] = ref
				portBound[bit] = true
			}
		}
	}

	// Declarations for internal nets.
	var wires, regs []string
	seen := map[NetID]bool{}
	collect := func(id NetID) {
		if id == ConstZero || id == ConstOne || portBound[id] || seen[id] {
			return
		}
		seen[id] = true
		if isFF[id] {
			regs = append(regs, nameOf(id))
		} else {
			wires = append(wires, nameOf(id))
		}
	}
	for gi := range n.Gates {
		collect(n.Gates[gi].Out)
		for _, in := range n.Gates[gi].Inputs() {
			collect(in)
		}
	}
	for i := range n.FFs {
		collect(n.FFs[i].Q)
		collect(n.FFs[i].D)
	}
	sort.Strings(wires)
	sort.Strings(regs)
	for _, wn := range wires {
		fmt.Fprintf(&b, "  wire %s;\n", wn)
	}
	for _, rn := range regs {
		fmt.Fprintf(&b, "  reg %s;\n", rn)
	}
	if len(wires)+len(regs) > 0 {
		b.WriteString("\n")
	}

	// Gates.
	for gi := range n.Gates {
		g := &n.Gates[gi]
		out := nameOf(g.Out)
		in := g.Inputs()
		switch g.Kind {
		case Buf:
			fmt.Fprintf(&b, "  assign %s = %s;\n", out, nameOf(in[0]))
		case Not:
			fmt.Fprintf(&b, "  assign %s = ~%s;\n", out, nameOf(in[0]))
		case And:
			fmt.Fprintf(&b, "  assign %s = %s & %s;\n", out, nameOf(in[0]), nameOf(in[1]))
		case Or:
			fmt.Fprintf(&b, "  assign %s = %s | %s;\n", out, nameOf(in[0]), nameOf(in[1]))
		case Xor:
			fmt.Fprintf(&b, "  assign %s = %s ^ %s;\n", out, nameOf(in[0]), nameOf(in[1]))
		case Nand:
			fmt.Fprintf(&b, "  assign %s = ~(%s & %s);\n", out, nameOf(in[0]), nameOf(in[1]))
		case Nor:
			fmt.Fprintf(&b, "  assign %s = ~(%s | %s);\n", out, nameOf(in[0]), nameOf(in[1]))
		case Xnor:
			fmt.Fprintf(&b, "  assign %s = ~(%s ^ %s);\n", out, nameOf(in[0]), nameOf(in[1]))
		case Mux:
			fmt.Fprintf(&b, "  assign %s = %s ? %s : %s;\n",
				out, nameOf(in[0]), nameOf(in[2]), nameOf(in[1]))
		default:
			return fmt.Errorf("netlist: cannot emit gate kind %s", g.Kind)
		}
	}

	// Flip-flops.
	if len(n.FFs) > 0 {
		b.WriteString("\n  always @(posedge clk) begin\n")
		for i := range n.FFs {
			ff := &n.FFs[i]
			fmt.Fprintf(&b, "    %s <= %s;\n", nameOf(ff.Q), nameOf(ff.D))
		}
		b.WriteString("  end\n")
	}

	// Output aliases.
	for _, a := range aliases {
		fmt.Fprintf(&b, "  assign %s = %s;\n", a.port, a.src)
	}

	b.WriteString("endmodule\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeIdent maps arbitrary names onto Verilog identifiers.
func sanitizeIdent(s string) string {
	if s == "" {
		return "top"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
