package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarises the size and shape of a netlist.
type Stats struct {
	Name       string
	Nets       int
	Gates      int
	FFs        int
	GateCount  int // gates + FFs, the Table I "Gates" metric
	Inputs     int // input bits
	Outputs    int // output bits
	Depth      int // combinational depth in gate levels
	ByKind     map[GateKind]int
	MaxFanin   int
	MaxFanout  int
	MeanFanout float64
}

// ComputeStats gathers netlist statistics. It panics if the netlist is
// cyclic; call Validate first for untrusted inputs.
func (n *Netlist) ComputeStats() Stats {
	s := Stats{
		Name:      n.Name,
		Nets:      n.numNets,
		Gates:     len(n.Gates),
		FFs:       len(n.FFs),
		GateCount: n.GateCount(),
		Inputs:    n.InputBits(),
		Outputs:   n.OutputBits(),
		ByKind:    make(map[GateKind]int),
	}
	fanout := make([]int, n.numNets)
	for gi := range n.Gates {
		g := &n.Gates[gi]
		s.ByKind[g.Kind]++
		ar := g.Kind.Arity()
		if ar > s.MaxFanin {
			s.MaxFanin = ar
		}
		for _, in := range g.Inputs() {
			fanout[in]++
		}
	}
	for fi := range n.FFs {
		fanout[n.FFs[fi].D]++
	}
	total := 0
	for _, f := range fanout {
		total += f
		if f > s.MaxFanout {
			s.MaxFanout = f
		}
	}
	if n.numNets > 0 {
		s.MeanFanout = float64(total) / float64(n.numNets)
	}
	lev, err := n.Levelize()
	if err != nil {
		panic("netlist: ComputeStats on invalid netlist: " + err.Error())
	}
	s.Depth = int(lev.Depth)
	return s
}

// String renders the statistics as a short human-readable block.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "netlist %q: %d nets, %d gates + %d FFs (%d total), %d in / %d out bits, depth %d\n",
		s.Name, s.Nets, s.Gates, s.FFs, s.GateCount, s.Inputs, s.Outputs, s.Depth)
	kinds := make([]GateKind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-5s %d\n", k, s.ByKind[k])
	}
	return b.String()
}
