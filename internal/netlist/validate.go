package netlist

import "fmt"

// Validate performs structural sanity checks: every net has at most one
// driver, every referenced net exists, ports reference valid nets, every
// combinational output (primary outputs and flip-flop D pins) is driven,
// and the combinational core is acyclic.
func (n *Netlist) Validate() error {
	inRange := func(id NetID) bool { return id >= 0 && int(id) < n.numNets }

	driver := make([]int8, n.numNets) // 0 none, 1 gate, 2 input, 3 ff
	driver[ConstZero] = 2
	driver[ConstOne] = 2

	for pi := range n.Inputs {
		p := &n.Inputs[pi]
		for _, b := range p.Bits {
			if !inRange(b) {
				return fmt.Errorf("netlist %q: input %s references net %d out of range", n.Name, p.Name, b)
			}
			if driver[b] != 0 {
				return fmt.Errorf("netlist %q: input %s bit %s has multiple drivers", n.Name, p.Name, n.NameOf(b))
			}
			driver[b] = 2
		}
	}
	for fi := range n.FFs {
		ff := &n.FFs[fi]
		if !inRange(ff.D) || !inRange(ff.Q) {
			return fmt.Errorf("netlist %q: flip-flop %d references net out of range", n.Name, fi)
		}
		if driver[ff.Q] != 0 {
			return fmt.Errorf("netlist %q: flip-flop output %s has multiple drivers", n.Name, n.NameOf(ff.Q))
		}
		driver[ff.Q] = 3
	}
	for gi := range n.Gates {
		g := &n.Gates[gi]
		if g.Kind >= numGateKinds {
			return fmt.Errorf("netlist %q: gate %d has invalid kind %d", n.Name, gi, g.Kind)
		}
		if !inRange(g.Out) {
			return fmt.Errorf("netlist %q: gate %d output net %d out of range", n.Name, gi, g.Out)
		}
		if driver[g.Out] != 0 {
			return fmt.Errorf("netlist %q: net %s has multiple drivers", n.Name, n.NameOf(g.Out))
		}
		driver[g.Out] = 1
		for _, in := range g.Inputs() {
			if !inRange(in) {
				return fmt.Errorf("netlist %q: gate %d input net %d out of range", n.Name, gi, in)
			}
		}
	}

	for pi := range n.Outputs {
		p := &n.Outputs[pi]
		for _, b := range p.Bits {
			if !inRange(b) {
				return fmt.Errorf("netlist %q: output %s references net %d out of range", n.Name, p.Name, b)
			}
			if driver[b] == 0 {
				return fmt.Errorf("netlist %q: output %s bit %s is undriven", n.Name, p.Name, n.NameOf(b))
			}
		}
	}
	for fi := range n.FFs {
		if driver[n.FFs[fi].D] == 0 {
			return fmt.Errorf("netlist %q: flip-flop %d data pin %s is undriven", n.Name, fi, n.NameOf(n.FFs[fi].D))
		}
	}

	// Acyclicity (and undriven gate inputs) are checked by Levelize.
	if _, err := n.Levelize(); err != nil {
		return err
	}
	return nil
}
