package netlist

import (
	"fmt"

	"c2nn/internal/irlint/diag"
)

// Validate performs structural sanity checks: every net has at most one
// driver, every referenced net exists, ports reference valid nets, every
// combinational output (primary outputs and flip-flop D pins) is driven,
// and the combinational core is acyclic.
//
// Validate is a thin wrapper over the collect-all irlint rules in
// lint.go: it returns the first Error-severity diagnostic as an error
// and ignores warnings. Callers that want every violation (and the
// warning-level rules) should use Lint.
func (n *Netlist) Validate() error {
	for _, d := range n.Lint() {
		if d.Severity == diag.Error {
			return fmt.Errorf("netlist %q: [%s] %s: %s", n.Name, d.Rule, d.Loc, d.Msg)
		}
	}
	return nil
}
