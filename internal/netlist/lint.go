package netlist

import (
	"strconv"

	"c2nn/internal/irlint/diag"
)

// Netlist-stage lint rules (NL···). Lint collects every violation; the
// legacy Validate wrapper in validate.go returns only the first error.
var (
	// RuleNetRange fires when a port, gate or flip-flop references a
	// net ID outside [0, NumNets).
	RuleNetRange = diag.Register(diag.Rule{
		ID: "NL001", Stage: diag.StageNetlist, Severity: diag.Error,
		Summary: "net reference out of range"})
	// RuleMultiDriven fires when a net has more than one driver
	// (gate output, primary input or flip-flop Q).
	RuleMultiDriven = diag.Register(diag.Rule{
		ID: "NL002", Stage: diag.StageNetlist, Severity: diag.Error,
		Summary: "net has multiple drivers"})
	// RuleUndrivenOutput fires when a combinational output — a primary
	// output bit or a flip-flop D pin — has no driver.
	RuleUndrivenOutput = diag.Register(diag.Rule{
		ID: "NL003", Stage: diag.StageNetlist, Severity: diag.Error,
		Summary: "combinational output is undriven"})
	// RuleReadUndriven fires when a gate input reads a net that is
	// neither a combinational input nor any gate or flip-flop output.
	RuleReadUndriven = diag.Register(diag.Rule{
		ID: "NL004", Stage: diag.StageNetlist, Severity: diag.Error,
		Summary: "gate reads an undriven net"})
	// RuleCombCycle fires once per combinational cycle (strongly
	// connected gate component not broken by a flip-flop, §III-C).
	RuleCombCycle = diag.Register(diag.Rule{
		ID: "NL005", Stage: diag.StageNetlist, Severity: diag.Error,
		Summary: "combinational cycle not broken by a flip-flop"})
	// RuleBadGateKind fires on a gate whose kind is not a defined
	// primitive.
	RuleBadGateKind = diag.Register(diag.Rule{
		ID: "NL006", Stage: diag.StageNetlist, Severity: diag.Error,
		Summary: "invalid gate kind"})
	// RuleDeadGate fires on gates whose output cone reaches no primary
	// output and no flip-flop D pin — dead logic the mapper would
	// silently drop.
	RuleDeadGate = diag.Register(diag.Rule{
		ID: "NL007", Stage: diag.StageNetlist, Severity: diag.Warning,
		Summary: "gate drives no output cone (dead logic)"})
	// RuleUnusedInput fires on primary input bits with no fanout.
	// Legitimate designs carry these (reserved bus bits), hence Info.
	RuleUnusedInput = diag.Register(diag.Rule{
		ID: "NL008", Stage: diag.StageNetlist, Severity: diag.Info,
		Summary: "primary input bit has no fanout"})
)

// Lint runs every netlist-stage rule and returns all violations found.
// Unlike the first-error Validate, it keeps going after a violation so
// one run reports every problem in the IR.
func (n *Netlist) Lint() []diag.Diagnostic {
	var ds []diag.Diagnostic
	inRange := func(id NetID) bool { return id >= 0 && int(id) < n.numNets }

	// Driver classification; out-of-range references are reported and
	// then excluded so later passes stay in bounds.
	const (
		drvNone = iota
		drvGate
		drvInput
		drvFF
	)
	driver := make([]int8, n.numNets)
	driver[ConstZero] = drvInput
	driver[ConstOne] = drvInput

	claim := func(id NetID, kind int8, loc string) {
		if driver[id] != drvNone {
			ds = append(ds, RuleMultiDriven.New(loc,
				"net %s has multiple drivers", n.NameOf(id)))
			return
		}
		driver[id] = kind
	}

	for pi := range n.Inputs {
		p := &n.Inputs[pi]
		for bi, b := range p.Bits {
			if !inRange(b) {
				ds = append(ds, RuleNetRange.New(
					locInput(p.Name, bi, len(p.Bits)),
					"references net %d, netlist has %d nets", b, n.numNets))
				continue
			}
			claim(b, drvInput, locInput(p.Name, bi, len(p.Bits)))
		}
	}
	for fi := range n.FFs {
		ff := &n.FFs[fi]
		if !inRange(ff.D) {
			ds = append(ds, RuleNetRange.New(locFF(fi),
				"D pin references net %d, netlist has %d nets", ff.D, n.numNets))
		}
		if !inRange(ff.Q) {
			ds = append(ds, RuleNetRange.New(locFF(fi),
				"Q pin references net %d, netlist has %d nets", ff.Q, n.numNets))
			continue
		}
		claim(ff.Q, drvFF, locFF(fi))
	}

	gateOK := make([]bool, len(n.Gates)) // kind valid and all refs in range
	for gi := range n.Gates {
		g := &n.Gates[gi]
		if g.Kind >= numGateKinds {
			ds = append(ds, RuleBadGateKind.New(locGate(gi),
				"gate kind %d is not a defined primitive", g.Kind))
			continue
		}
		ok := true
		if !inRange(g.Out) {
			ds = append(ds, RuleNetRange.New(locGate(gi),
				"%s output references net %d, netlist has %d nets", g.Kind, g.Out, n.numNets))
			ok = false
		} else {
			claim(g.Out, drvGate, locGate(gi))
		}
		for ii, in := range g.Inputs() {
			if !inRange(in) {
				ds = append(ds, RuleNetRange.New(locGate(gi),
					"%s input %d references net %d, netlist has %d nets", g.Kind, ii, in, n.numNets))
				ok = false
			}
		}
		gateOK[gi] = ok
	}

	for pi := range n.Outputs {
		p := &n.Outputs[pi]
		for bi, b := range p.Bits {
			if !inRange(b) {
				ds = append(ds, RuleNetRange.New(
					locOutput(p.Name, bi, len(p.Bits)),
					"references net %d, netlist has %d nets", b, n.numNets))
				continue
			}
			if driver[b] == drvNone {
				ds = append(ds, RuleUndrivenOutput.New(
					locOutput(p.Name, bi, len(p.Bits)),
					"output bit %s is undriven", n.NameOf(b)))
			}
		}
	}
	for fi := range n.FFs {
		d := n.FFs[fi].D
		if inRange(d) && driver[d] == drvNone {
			ds = append(ds, RuleUndrivenOutput.New(locFF(fi),
				"flip-flop data pin %s is undriven", n.NameOf(d)))
		}
	}

	// Undriven gate reads, over well-formed gates only.
	for gi := range n.Gates {
		if !gateOK[gi] {
			continue
		}
		g := &n.Gates[gi]
		for _, in := range g.Inputs() {
			if driver[in] == drvNone {
				ds = append(ds, RuleReadUndriven.New(locGate(gi),
					"%s gate driving %s reads undriven net %s",
					g.Kind, n.NameOf(g.Out), n.NameOf(in)))
			}
		}
	}

	ds = append(ds, n.lintCycles(gateOK)...)
	ds = append(ds, n.lintDeadLogic(gateOK, driver)...)
	return ds
}

// lintCycles finds every strongly connected component of the gate
// dependency graph with more than one gate (or a self-loop) and emits
// one RuleCombCycle diagnostic per component — collect-all, where
// Levelize stops at the first back edge.
func (n *Netlist) lintCycles(gateOK []bool) []diag.Diagnostic {
	drv := n.DriverIndex()
	// Successor lists: succ[g] holds the well-formed gates driving g's
	// inputs. Self-loops are kept — they are cycles of length one.
	succ := make([][]int32, len(n.Gates))
	for gi := range n.Gates {
		if !gateOK[gi] {
			continue
		}
		for _, in := range n.Gates[gi].Inputs() {
			if di := drv[in]; di >= 0 && gateOK[di] {
				succ[gi] = append(succ[gi], di)
			}
		}
	}

	// Iterative Tarjan SCC over the gate dependency graph.
	const unvisited = -1
	index := make([]int32, len(n.Gates))
	low := make([]int32, len(n.Gates))
	onStack := make([]bool, len(n.Gates))
	for i := range index {
		index[i] = unvisited
	}
	var (
		ds      []diag.Diagnostic
		counter int32
		stack   []int32 // Tarjan stack
	)

	type frame struct {
		gate int32
		next int // next successor to follow
	}
	var call []frame

	reportSCC := func(members []int32) {
		// Name up to three nets on the cycle for the message.
		names := ""
		for i, gi := range members {
			if i == 3 {
				names += ", …"
				break
			}
			if i > 0 {
				names += ", "
			}
			names += n.NameOf(n.Gates[gi].Out)
		}
		ds = append(ds, RuleCombCycle.New(locGate(int(members[0])),
			"combinational cycle through %d gate(s): nets %s", len(members), names))
	}

	for root := range n.Gates {
		if !gateOK[root] || index[root] != unvisited {
			continue
		}
		call = append(call[:0], frame{gate: int32(root)})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, int32(root))
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			gi := f.gate
			if f.next < len(succ[gi]) {
				s := succ[gi][f.next]
				f.next++
				if index[s] == unvisited {
					index[s] = counter
					low[s] = counter
					counter++
					stack = append(stack, s)
					onStack[s] = true
					call = append(call, frame{gate: s})
				} else if onStack[s] && index[s] < low[gi] {
					low[gi] = index[s]
				}
				continue
			}
			// All successors done: close the node.
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].gate
				if low[gi] < low[parent] {
					low[parent] = low[gi]
				}
			}
			if low[gi] == index[gi] {
				// Pop the component.
				var members []int32
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					members = append(members, m)
					if m == gi {
						break
					}
				}
				selfLoop := false
				if len(members) == 1 {
					for _, s := range succ[gi] {
						if s == gi {
							selfLoop = true
						}
					}
				}
				if len(members) > 1 || selfLoop {
					reportSCC(members)
				}
			}
		}
	}
	return ds
}

// lintDeadLogic reports gates outside every output cone (NL007) and
// primary input bits with no fanout (NL008).
func (n *Netlist) lintDeadLogic(gateOK []bool, driver []int8) []diag.Diagnostic {
	var ds []diag.Diagnostic
	drv := n.DriverIndex()

	// Backwards reachability from the combinational outputs.
	live := make([]bool, len(n.Gates))
	var stack []int32
	seed := func(id NetID) {
		if id >= 0 && int(id) < n.numNets {
			if gi := drv[id]; gi >= 0 && gateOK[gi] && !live[gi] {
				live[gi] = true
				stack = append(stack, gi)
			}
		}
	}
	for _, id := range n.CombOutputs() {
		seed(id)
	}
	for len(stack) > 0 {
		gi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range n.Gates[gi].Inputs() {
			seed(in)
		}
	}
	for gi := range n.Gates {
		if gateOK[gi] && !live[gi] {
			ds = append(ds, RuleDeadGate.New(locGate(gi),
				"%s gate driving %s reaches no output or flip-flop",
				n.Gates[gi].Kind, n.NameOf(n.Gates[gi].Out)))
		}
	}

	// Input fanout: read by a gate, exported by an output port, or
	// latched by a flip-flop D pin.
	read := make([]bool, n.numNets)
	mark := func(id NetID) {
		if id >= 0 && int(id) < n.numNets {
			read[id] = true
		}
	}
	for gi := range n.Gates {
		if !gateOK[gi] {
			continue
		}
		for _, in := range n.Gates[gi].Inputs() {
			mark(in)
		}
	}
	for i := range n.FFs {
		mark(n.FFs[i].D)
	}
	for i := range n.Outputs {
		for _, b := range n.Outputs[i].Bits {
			mark(b)
		}
	}
	for pi := range n.Inputs {
		p := &n.Inputs[pi]
		for bi, b := range p.Bits {
			if b >= 0 && int(b) < n.numNets && !read[b] {
				ds = append(ds, RuleUnusedInput.New(
					locInput(p.Name, bi, len(p.Bits)),
					"input bit %s is never read", n.NameOf(b)))
			}
		}
	}
	return ds
}

func locGate(gi int) string { return "gate " + strconv.Itoa(gi) }
func locFF(fi int) string   { return "ff " + strconv.Itoa(fi) }

func locInput(name string, bit, width int) string {
	if width == 1 {
		return "input " + name
	}
	return "input " + name + "[" + strconv.Itoa(bit) + "]"
}

func locOutput(name string, bit, width int) string {
	if width == 1 {
		return "output " + name
	}
	return "output " + name + "[" + strconv.Itoa(bit) + "]"
}
