package verilog

import "fmt"

// TokenKind enumerates lexical token categories of the supported
// Verilog-2005 subset.
type TokenKind uint8

// Token kinds. Operator tokens are named after their spelling.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber // sized or unsized literal, see Number
	TokString

	// Keywords.
	TokModule
	TokEndmodule
	TokInput
	TokOutput
	TokInout
	TokWire
	TokReg
	TokInteger
	TokGenvar
	TokParameter
	TokLocalparam
	TokAssign
	TokAlways
	TokInitial
	TokPosedge
	TokNegedge
	TokOr // event "or" keyword
	TokIf
	TokElse
	TokBegin
	TokEnd
	TokCase
	TokCasez
	TokCasex
	TokEndcase
	TokDefault
	TokFor
	TokFunction
	TokEndfunction
	TokGenerate
	TokEndgenerate
	TokSigned

	// Punctuation.
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokLBrace
	TokRBrace
	TokSemi
	TokComma
	TokColon
	TokDot
	TokHash
	TokAt
	TokQuestion

	// Operators.
	TokAssignOp   // =
	TokNonblock   // <=  (also less-equal; parser disambiguates)
	TokPlus       // +
	TokMinus      // -
	TokStar       // *
	TokSlash      // /
	TokPercent    // %
	TokNot        // !
	TokTilde      // ~
	TokAmp        // &
	TokPipe       // |
	TokCaret      // ^
	TokTildeCaret // ~^ or ^~
	TokTildeAmp   // ~&
	TokTildePipe  // ~|
	TokAndAnd     // &&
	TokOrOr       // ||
	TokEq         // ==
	TokNeq        // !=
	TokCaseEq     // ===
	TokCaseNeq    // !==
	TokLt         // <
	TokGt         // >
	TokGe         // >=
	TokShl        // <<
	TokShr        // >>
	TokAShr       // >>>
	TokPower      // **
)

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number", TokString: "string",
	TokModule: "module", TokEndmodule: "endmodule", TokInput: "input",
	TokOutput: "output", TokInout: "inout", TokWire: "wire", TokReg: "reg",
	TokInteger: "integer", TokGenvar: "genvar", TokParameter: "parameter",
	TokLocalparam: "localparam", TokAssign: "assign", TokAlways: "always",
	TokInitial: "initial", TokPosedge: "posedge", TokNegedge: "negedge",
	TokOr: "or", TokIf: "if", TokElse: "else", TokBegin: "begin", TokEnd: "end",
	TokCase: "case", TokCasez: "casez", TokCasex: "casex", TokEndcase: "endcase",
	TokDefault: "default", TokFor: "for", TokFunction: "function",
	TokEndfunction: "endfunction", TokGenerate: "generate",
	TokEndgenerate: "endgenerate", TokSigned: "signed",
	TokLParen: "(", TokRParen: ")", TokLBracket: "[", TokRBracket: "]",
	TokLBrace: "{", TokRBrace: "}", TokSemi: ";", TokComma: ",",
	TokColon: ":", TokDot: ".", TokHash: "#", TokAt: "@", TokQuestion: "?",
	TokAssignOp: "=", TokNonblock: "<=", TokPlus: "+", TokMinus: "-",
	TokStar: "*", TokSlash: "/", TokPercent: "%", TokNot: "!", TokTilde: "~",
	TokAmp: "&", TokPipe: "|", TokCaret: "^", TokTildeCaret: "~^",
	TokTildeAmp: "~&", TokTildePipe: "~|", TokAndAnd: "&&", TokOrOr: "||",
	TokEq: "==", TokNeq: "!=", TokCaseEq: "===", TokCaseNeq: "!==",
	TokLt: "<", TokGt: ">", TokGe: ">=", TokShl: "<<", TokShr: ">>",
	TokAShr: ">>>", TokPower: "**",
}

// String returns a human-readable token kind name.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", uint8(k))
}

var keywords = map[string]TokenKind{
	"module": TokModule, "endmodule": TokEndmodule, "input": TokInput,
	"output": TokOutput, "inout": TokInout, "wire": TokWire, "reg": TokReg,
	"integer": TokInteger, "genvar": TokGenvar, "parameter": TokParameter,
	"localparam": TokLocalparam, "assign": TokAssign, "always": TokAlways,
	"initial": TokInitial, "posedge": TokPosedge, "negedge": TokNegedge,
	"or": TokOr, "if": TokIf, "else": TokElse, "begin": TokBegin,
	"end": TokEnd, "case": TokCase, "casez": TokCasez, "casex": TokCasex,
	"endcase": TokEndcase, "default": TokDefault, "for": TokFor,
	"function": TokFunction, "endfunction": TokEndfunction,
	"generate": TokGenerate, "endgenerate": TokEndgenerate,
	"signed": TokSigned,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position in file:line:col form.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Number is the decoded value of a Verilog literal. Values wider than 64
// bits are stored across little-endian words. An unsized literal (plain
// "42") has Sized == false and Width 32, per the language rules.
//
// Wild marks bit positions written as x, z or ? in the source. In
// ordinary (two-valued) contexts wild bits read as 0; in casez/casex
// item labels they are don't-cares.
type Number struct {
	Words []uint64
	Wild  []uint64
	Width int
	Sized bool
}

// WildBit reports whether bit i was written as a wildcard digit.
func (n Number) WildBit(i int) bool {
	if i < 0 || i >= n.Width {
		return false
	}
	w := i / 64
	if w >= len(n.Wild) {
		return false
	}
	return n.Wild[w]>>(uint(i)%64)&1 == 1
}

// HasWild reports whether any bit of the literal is a wildcard.
func (n Number) HasWild() bool {
	for _, w := range n.Wild {
		if w != 0 {
			return true
		}
	}
	return false
}

// Bit returns bit i of the number (false beyond Width).
func (n Number) Bit(i int) bool {
	if i < 0 || i >= n.Width {
		return false
	}
	w := i / 64
	if w >= len(n.Words) {
		return false
	}
	return n.Words[w]>>(uint(i)%64)&1 == 1
}

// Uint64 returns the low 64 bits of the value.
func (n Number) Uint64() uint64 {
	if len(n.Words) == 0 {
		return 0
	}
	v := n.Words[0]
	if n.Width < 64 {
		v &= (1 << uint(n.Width)) - 1
	}
	return v
}

// Int returns the value as an int; it panics if the value exceeds the
// positive int range (callers use it only for widths and indices).
func (n Number) Int() int {
	for i, w := range n.Words {
		if i == 0 {
			continue
		}
		if w != 0 {
			panic("verilog: literal too large for int context")
		}
	}
	v := n.Uint64()
	if v > uint64(int(^uint(0)>>1)) {
		panic("verilog: literal too large for int context")
	}
	return int(v)
}

// Token is a single lexical token with its position and payload.
type Token struct {
	Kind TokenKind
	Pos  Pos
	Text string // identifier or string body
	Num  Number // valid when Kind == TokNumber
}
