package verilog

import (
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) *Module {
	t.Helper()
	sf, err := Parse("test.v", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(sf.Modules) != 1 {
		t.Fatalf("parsed %d modules, want 1", len(sf.Modules))
	}
	return sf.Modules[0]
}

func TestParseEmptyModule(t *testing.T) {
	m := parseOne(t, "module empty; endmodule")
	if m.Name != "empty" || len(m.Items) != 0 {
		t.Errorf("module %q items=%d", m.Name, len(m.Items))
	}
}

func TestParseANSIPorts(t *testing.T) {
	m := parseOne(t, `
module adder (
    input  wire [7:0] a, b,
    input  wire       cin,
    output wire [7:0] sum,
    output wire       cout
);
endmodule`)
	if len(m.Ports) != 5 {
		t.Fatalf("ports = %d, want 5", len(m.Ports))
	}
	names := []string{"a", "b", "cin", "sum", "cout"}
	for i, want := range names {
		if m.Ports[i].Name != want {
			t.Errorf("port %d = %q, want %q", i, m.Ports[i].Name, want)
		}
		if m.Ports[i].Decl == nil {
			t.Errorf("port %q missing ANSI decl", want)
		}
	}
	// b must inherit direction and range from a.
	b := m.Ports[1].Decl
	if b.Dir != DirInput || b.MSB == nil {
		t.Errorf("port b: dir=%v msb=%v", b.Dir, b.MSB)
	}
	if m.Ports[3].Decl.Dir != DirOutput {
		t.Error("sum not an output")
	}
}

func TestParseNonANSIPorts(t *testing.T) {
	m := parseOne(t, `
module old (a, b, y);
  input a, b;
  output y;
  assign y = a & b;
endmodule`)
	if len(m.Ports) != 3 {
		t.Fatalf("ports = %d", len(m.Ports))
	}
	if m.Ports[0].Decl != nil {
		t.Error("non-ANSI port has decl")
	}
	nDecls := 0
	for _, it := range m.Items {
		if _, ok := it.(*NetDecl); ok {
			nDecls++
		}
	}
	if nDecls != 2 {
		t.Errorf("body decls = %d, want 2", nDecls)
	}
}

func TestParseHeaderParams(t *testing.T) {
	m := parseOne(t, `
module fifo #(parameter WIDTH = 8, DEPTH = 16, parameter [3:0] MODE = 4'd2) (
  input wire [WIDTH-1:0] din
);
endmodule`)
	if len(m.Params) != 3 {
		t.Fatalf("params = %d, want 3", len(m.Params))
	}
	want := []string{"WIDTH", "DEPTH", "MODE"}
	for i, w := range want {
		if m.Params[i].Name != w {
			t.Errorf("param %d = %q, want %q", i, m.Params[i].Name, w)
		}
	}
}

func TestParseLocalparamAndBodyParam(t *testing.T) {
	m := parseOne(t, `
module m;
  parameter P = 4;
  localparam Q = P * 2, R = Q + 1;
endmodule`)
	var locals, params int
	for _, it := range m.Items {
		if pd, ok := it.(*ParamDecl); ok {
			if pd.Local {
				locals++
			} else {
				params++
			}
		}
	}
	if params != 1 || locals != 2 {
		t.Errorf("params=%d locals=%d", params, locals)
	}
}

func TestParseContAssignList(t *testing.T) {
	m := parseOne(t, `
module m(input a, input b, output x, output y);
  assign x = a ^ b, y = a | b;
endmodule`)
	var n int
	for _, it := range m.Items {
		if _, ok := it.(*ContAssign); ok {
			n++
		}
	}
	if n != 2 {
		t.Errorf("assigns = %d, want 2", n)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	m := parseOne(t, `
module m(input [7:0] a, b, c, output [7:0] y);
  assign y = a + b * c;
endmodule`)
	ca := findAssign(t, m)
	bin, ok := ca.RHS.(*Binary)
	if !ok || bin.Op != TokPlus {
		t.Fatalf("top op = %T", ca.RHS)
	}
	inner, ok := bin.Y.(*Binary)
	if !ok || inner.Op != TokStar {
		t.Fatalf("rhs of + is %T, want *", bin.Y)
	}
}

func TestParseTernaryRightAssoc(t *testing.T) {
	m := parseOne(t, `
module m(input s1, s2, input [3:0] a, b, c, output [3:0] y);
  assign y = s1 ? a : s2 ? b : c;
endmodule`)
	ca := findAssign(t, m)
	top, ok := ca.RHS.(*Ternary)
	if !ok {
		t.Fatalf("top = %T", ca.RHS)
	}
	if _, ok := top.B.(*Ternary); !ok {
		t.Fatalf("else arm = %T, want nested ternary", top.B)
	}
}

func TestParseConcatReplication(t *testing.T) {
	m := parseOne(t, `
module m(input [3:0] a, output [15:0] y);
  assign y = {4'hF, {2{a}}, a[3:0]};
endmodule`)
	ca := findAssign(t, m)
	cat, ok := ca.RHS.(*Concat)
	if !ok || len(cat.Parts) != 3 {
		t.Fatalf("rhs = %T with %d parts", ca.RHS, len(cat.Parts))
	}
	if _, ok := cat.Parts[1].(*Repl); !ok {
		t.Errorf("part 1 = %T, want Repl", cat.Parts[1])
	}
	if _, ok := cat.Parts[2].(*RangeSelect); !ok {
		t.Errorf("part 2 = %T, want RangeSelect", cat.Parts[2])
	}
}

func TestParseIndexedPartSelect(t *testing.T) {
	m := parseOne(t, `
module m(input [31:0] a, input [4:0] i, output [7:0] y, z);
  assign y = a[i +: 8];
  assign z = a[i -: 8];
endmodule`)
	var sel []*RangeSelect
	for _, it := range m.Items {
		if ca, ok := it.(*ContAssign); ok {
			sel = append(sel, ca.RHS.(*RangeSelect))
		}
	}
	if len(sel) != 2 || sel[0].Mode != RangeUp || sel[1].Mode != RangeDown {
		t.Fatalf("part selects parsed wrong: %+v", sel)
	}
}

func TestParseAlwaysComb(t *testing.T) {
	m := parseOne(t, `
module m(input [1:0] s, input [3:0] a, b, c, d, output reg [3:0] y);
  always @* begin
    case (s)
      2'd0: y = a;
      2'd1: y = b;
      2'd2: y = c;
      default: y = d;
    endcase
  end
endmodule`)
	a := findAlways(t, m)
	if !a.Star {
		t.Error("not a star block")
	}
	blk := a.Body.(*Block)
	cs := blk.Stmts[0].(*Case)
	if len(cs.Items) != 4 || !cs.Items[3].Default {
		t.Fatalf("case items = %d", len(cs.Items))
	}
}

func TestParseAlwaysClocked(t *testing.T) {
	m := parseOne(t, `
module m(input clk, rst, d, output reg q);
  always @(posedge clk) begin
    if (rst) q <= 1'b0;
    else q <= d;
  end
endmodule`)
	a := findAlways(t, m)
	if a.Star || len(a.Sens) != 1 || a.Sens[0].Edge != EdgePos || a.Sens[0].Signal != "clk" {
		t.Fatalf("sens = %+v", a.Sens)
	}
	iff := a.Body.(*Block).Stmts[0].(*If)
	asn := iff.Then.(*Assign)
	if asn.Blocking {
		t.Error("nonblocking assignment parsed as blocking")
	}
}

func TestParseSensitivityList(t *testing.T) {
	m := parseOne(t, `
module m(input clk, arst, d, output reg q);
  always @(posedge clk or posedge arst)
    if (arst) q <= 0; else q <= d;
endmodule`)
	a := findAlways(t, m)
	if len(a.Sens) != 2 {
		t.Fatalf("sens = %+v", a.Sens)
	}
}

func TestParseForLoop(t *testing.T) {
	m := parseOne(t, `
module m(input [7:0] a, output reg [7:0] y);
  integer i;
  always @* begin
    for (i = 0; i < 8; i = i + 1)
      y[i] = a[7 - i];
  end
endmodule`)
	a := findAlways(t, m)
	f := a.Body.(*Block).Stmts[0].(*For)
	if f.Var != "i" || f.StepVar != "i" {
		t.Fatalf("for parsed wrong: %+v", f)
	}
}

func TestParseInstance(t *testing.T) {
	m := parseOne(t, `
module top(input [7:0] a, b, output [7:0] s);
  wire c;
  adder #(.WIDTH(8)) u0 (.a(a), .b(b), .sum(s), .cout(c), .cin(1'b0));
endmodule`)
	var inst *Instance
	for _, it := range m.Items {
		if x, ok := it.(*Instance); ok {
			inst = x
		}
	}
	if inst == nil {
		t.Fatal("no instance parsed")
	}
	if inst.ModuleName != "adder" || inst.Name != "u0" {
		t.Errorf("instance %s %s", inst.ModuleName, inst.Name)
	}
	if len(inst.Params) != 1 || !inst.Params[0].Named || inst.Params[0].Name != "WIDTH" {
		t.Errorf("params = %+v", inst.Params)
	}
	if len(inst.Ports) != 5 {
		t.Errorf("ports = %d", len(inst.Ports))
	}
}

func TestParsePositionalInstance(t *testing.T) {
	m := parseOne(t, `
module top(input a, b, output y);
  and2 g0 (y, a, b);
endmodule`)
	var inst *Instance
	for _, it := range m.Items {
		if x, ok := it.(*Instance); ok {
			inst = x
		}
	}
	if inst == nil || len(inst.Ports) != 3 || inst.Ports[0].Named {
		t.Fatalf("instance = %+v", inst)
	}
}

func TestParseFunction(t *testing.T) {
	m := parseOne(t, `
module m(input [7:0] x, output [7:0] y);
  function [7:0] double;
    input [7:0] v;
    begin
      double = v << 1;
    end
  endfunction
  assign y = double(x);
endmodule`)
	var fn *FunctionDecl
	for _, it := range m.Items {
		if f, ok := it.(*FunctionDecl); ok {
			fn = f
		}
	}
	if fn == nil || fn.Name != "double" || len(fn.Inputs) != 1 {
		t.Fatalf("function = %+v", fn)
	}
	ca := findAssign(t, m)
	if _, ok := ca.RHS.(*Call); !ok {
		t.Fatalf("rhs = %T, want Call", ca.RHS)
	}
}

func TestParseGenerateFor(t *testing.T) {
	m := parseOne(t, `
module m(input [7:0] a, b, output [7:0] y);
  genvar i;
  generate
    for (i = 0; i < 8; i = i + 1) begin : bit
      assign y[i] = a[i] ^ b[i];
    end
  endgenerate
endmodule`)
	var gen *GenerateFor
	for _, it := range m.Items {
		if g, ok := it.(*GenerateFor); ok {
			gen = g
		}
	}
	if gen == nil || gen.Var != "i" || gen.Label != "bit" || len(gen.Body) != 1 {
		t.Fatalf("generate = %+v", gen)
	}
}

func TestParseCasez(t *testing.T) {
	m := parseOne(t, `
module pri(input [3:0] r, output reg [1:0] g);
  always @* begin
    casez (r)
      4'b???1: g = 2'd0;
      4'b??10: g = 2'd1;
      4'b?100: g = 2'd2;
      default: g = 2'd3;
    endcase
  end
endmodule`)
	a := findAlways(t, m)
	cs := a.Body.(*Block).Stmts[0].(*Case)
	if cs.Kind != CaseZ {
		t.Fatalf("kind = %v", cs.Kind)
	}
	lbl := cs.Items[0].Labels[0].(*NumberExpr)
	if !lbl.Num.HasWild() || lbl.Num.Uint64() != 1 {
		t.Fatalf("label = %+v", lbl.Num)
	}
}

func TestParseInitialIgnorable(t *testing.T) {
	m := parseOne(t, `
module m(output reg q);
  initial q = 0;
endmodule`)
	if len(m.Items) != 1 {
		t.Fatalf("items = %d", len(m.Items))
	}
	if _, ok := m.Items[0].(*InitialBlock); !ok {
		t.Fatalf("item = %T", m.Items[0])
	}
}

func TestParseMultipleModules(t *testing.T) {
	sf, err := Parse("two.v", `
module a; endmodule
module b; endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sf.Modules) != 2 {
		t.Fatalf("modules = %d", len(sf.Modules))
	}
}

func TestBuildDesignDuplicate(t *testing.T) {
	_, err := BuildDesign(map[string]string{
		"a.v": "module m; endmodule",
		"b.v": "module m; endmodule",
	}, []string{"a.v", "b.v"})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"module",                          // truncated
		"module m(; endmodule",            // bad port list
		"module m; assign = 1; endmodule", // missing LHS
		"module m; wire; endmodule",       // missing name
		"module m; always @; endmodule",   // missing sens list
		"module m; case endmodule",        // case at module level
		"module m; assign x 1; endmodule", // missing '='
		"module m; wire w = ; endmodule",  // missing init expr
		"module m; foo #() (); endmodule", // instance missing name
	}
	for _, src := range bad {
		if _, err := Parse("bad.v", src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("pos.v", "module m;\n  wire ;\nendmodule")
	if err == nil {
		t.Fatal("no error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2 (%v)", se.Pos.Line, err)
	}
}

func findAssign(t *testing.T, m *Module) *ContAssign {
	t.Helper()
	for _, it := range m.Items {
		if ca, ok := it.(*ContAssign); ok {
			return ca
		}
	}
	t.Fatal("no continuous assign found")
	return nil
}

func findAlways(t *testing.T, m *Module) *AlwaysBlock {
	t.Helper()
	for _, it := range m.Items {
		if a, ok := it.(*AlwaysBlock); ok {
			return a
		}
	}
	t.Fatal("no always block found")
	return nil
}

// BuildDesign with no explicit order must not depend on map iteration:
// the paths are sorted, so Design.Order — and with it top-module
// inference and diagnostic ordering — is identical run to run.
func TestBuildDesignDeterministicOrder(t *testing.T) {
	sources := map[string]string{
		"c.v": "module mc(input x, output y); assign y = x; endmodule\n",
		"a.v": "module ma(input x, output y); assign y = x; endmodule\n",
		"b.v": "module mb(input x, output y); assign y = x; endmodule\n",
	}
	want := []string{"ma", "mb", "mc"} // sorted path order a.v, b.v, c.v
	for i := 0; i < 20; i++ {
		d, err := BuildDesign(sources, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Order) != len(want) {
			t.Fatalf("Order = %v, want %v", d.Order, want)
		}
		for j := range want {
			if d.Order[j] != want[j] {
				t.Fatalf("iteration %d: Order = %v, want %v", i, d.Order, want)
			}
		}
	}
}
