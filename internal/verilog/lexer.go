// Package verilog implements the HDL frontend of the compiler: a lexer
// and recursive-descent parser for a synthesisable Verilog-2005 subset
// (paper §III-B1). The subset covers everything the benchmark designs
// need: ANSI and non-ANSI module headers, parameters and localparams,
// wire/reg declarations with vector ranges, continuous assignments,
// always blocks (combinational @* and clocked @(posedge …)), if/else,
// case/casez, for loops with constant bounds, functions, module
// instantiation with parameter overrides, and the full synthesisable
// expression grammar (arithmetic, shifts, comparisons, bitwise and
// logical operators, reductions, concatenation, replication, bit and
// part selects, conditional expressions).
//
// The pipeline is modular exactly as the paper prescribes: replacing
// this package is all that is needed to support another HDL.
package verilog

import (
	"fmt"
	"math/bits"
	"strings"
)

// SyntaxError is a lexical or parse error with its source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, file: file, line: 1, col: 1}
}

func (lx *lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) errorf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// skipSpace consumes whitespace, comments and compiler directives
// (`timescale, `default_nettype, …), which are irrelevant to synthesis.
func (lx *lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errorf(start, "unterminated block comment")
			}
		case c == '`':
			// Compiler directive: consume to end of line.
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans and returns the next token.
func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		word := lx.src[start:lx.off]
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Pos: pos, Text: word}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: word}, nil
	case isDigit(c), c == '\'':
		return lx.scanNumber(pos)
	case c == '"':
		lx.advance()
		start := lx.off
		for lx.off < len(lx.src) && lx.peek() != '"' {
			if lx.peek() == '\n' {
				return Token{}, lx.errorf(pos, "unterminated string")
			}
			lx.advance()
		}
		if lx.off >= len(lx.src) {
			return Token{}, lx.errorf(pos, "unterminated string")
		}
		body := lx.src[start:lx.off]
		lx.advance()
		return Token{Kind: TokString, Pos: pos, Text: body}, nil
	}

	// Operators and punctuation.
	two := func(kind TokenKind) Token {
		lx.advance()
		lx.advance()
		return Token{Kind: kind, Pos: pos}
	}
	one := func(kind TokenKind) Token {
		lx.advance()
		return Token{Kind: kind, Pos: pos}
	}
	d := lx.peek2()
	switch c {
	case '(':
		return one(TokLParen), nil
	case ')':
		return one(TokRParen), nil
	case '[':
		return one(TokLBracket), nil
	case ']':
		return one(TokRBracket), nil
	case '{':
		return one(TokLBrace), nil
	case '}':
		return one(TokRBrace), nil
	case ';':
		return one(TokSemi), nil
	case ',':
		return one(TokComma), nil
	case ':':
		return one(TokColon), nil
	case '.':
		return one(TokDot), nil
	case '#':
		return one(TokHash), nil
	case '@':
		return one(TokAt), nil
	case '?':
		return one(TokQuestion), nil
	case '+':
		return one(TokPlus), nil
	case '-':
		return one(TokMinus), nil
	case '*':
		if d == '*' {
			return two(TokPower), nil
		}
		return one(TokStar), nil
	case '/':
		return one(TokSlash), nil
	case '%':
		return one(TokPercent), nil
	case '!':
		if d == '=' {
			lx.advance()
			lx.advance()
			if lx.peek() == '=' {
				lx.advance()
				return Token{Kind: TokCaseNeq, Pos: pos}, nil
			}
			return Token{Kind: TokNeq, Pos: pos}, nil
		}
		return one(TokNot), nil
	case '~':
		switch d {
		case '^':
			return two(TokTildeCaret), nil
		case '&':
			return two(TokTildeAmp), nil
		case '|':
			return two(TokTildePipe), nil
		}
		return one(TokTilde), nil
	case '&':
		if d == '&' {
			return two(TokAndAnd), nil
		}
		return one(TokAmp), nil
	case '|':
		if d == '|' {
			return two(TokOrOr), nil
		}
		return one(TokPipe), nil
	case '^':
		if d == '~' {
			return two(TokTildeCaret), nil
		}
		return one(TokCaret), nil
	case '=':
		if d == '=' {
			lx.advance()
			lx.advance()
			if lx.peek() == '=' {
				lx.advance()
				return Token{Kind: TokCaseEq, Pos: pos}, nil
			}
			return Token{Kind: TokEq, Pos: pos}, nil
		}
		return one(TokAssignOp), nil
	case '<':
		switch d {
		case '=':
			return two(TokNonblock), nil
		case '<':
			return two(TokShl), nil
		}
		return one(TokLt), nil
	case '>':
		switch d {
		case '=':
			return two(TokGe), nil
		case '>':
			lx.advance()
			lx.advance()
			if lx.peek() == '>' {
				lx.advance()
				return Token{Kind: TokAShr, Pos: pos}, nil
			}
			return Token{Kind: TokShr, Pos: pos}, nil
		}
		return one(TokGt), nil
	}
	return Token{}, lx.errorf(pos, "unexpected character %q", string(c))
}

// scanNumber decodes decimal, based (b/o/d/h) and sized literals,
// including underscores as digit separators and values wider than 64
// bits.
func (lx *lexer) scanNumber(pos Pos) (Token, error) {
	// Optional leading decimal size.
	sizeDigits := ""
	for lx.off < len(lx.src) && (isDigit(lx.peek()) || lx.peek() == '_') {
		c := lx.advance()
		if c != '_' {
			sizeDigits += string(c)
		}
	}
	if lx.peek() != '\'' {
		// Plain unsized decimal.
		if sizeDigits == "" {
			return Token{}, lx.errorf(pos, "malformed number")
		}
		words, _, err := parseDigits(sizeDigits, 10)
		if err != nil {
			return Token{}, lx.errorf(pos, "%v", err)
		}
		return Token{Kind: TokNumber, Pos: pos, Num: Number{Words: words, Width: 32, Sized: false}}, nil
	}
	lx.advance() // consume '
	// Optional signed marker 's' (ignored: all arithmetic is unsigned in
	// the supported subset unless the declaration is signed).
	if lx.peek() == 's' || lx.peek() == 'S' {
		lx.advance()
	}
	if lx.off >= len(lx.src) {
		return Token{}, lx.errorf(pos, "malformed based literal")
	}
	baseCh := lx.advance()
	var base int
	switch baseCh {
	case 'b', 'B':
		base = 2
	case 'o', 'O':
		base = 8
	case 'd', 'D':
		base = 10
	case 'h', 'H':
		base = 16
	default:
		return Token{}, lx.errorf(pos, "invalid number base %q", string(baseCh))
	}
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	digits := ""
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == '_' {
			lx.advance()
			continue
		}
		if isBaseDigit(c, base) {
			digits += string(lx.advance())
			continue
		}
		break
	}
	if digits == "" {
		return Token{}, lx.errorf(pos, "based literal has no digits")
	}
	words, wild, err := parseDigits(digits, base)
	if err != nil {
		return Token{}, lx.errorf(pos, "%v", err)
	}
	width := 32
	sized := false
	if sizeDigits != "" {
		sw, _, err := parseDigits(sizeDigits, 10)
		if err != nil {
			return Token{}, lx.errorf(pos, "%v", err)
		}
		n := Number{Words: sw, Width: 64}
		width = n.Int()
		if width <= 0 {
			return Token{}, lx.errorf(pos, "literal size must be positive")
		}
		sized = true
	}
	num := Number{Words: words, Wild: wild, Width: width, Sized: sized}
	num.truncate()
	return Token{Kind: TokNumber, Pos: pos, Num: num}, nil
}

func isWildDigit(c byte) bool {
	return c == 'x' || c == 'z' || c == 'X' || c == 'Z' || c == '?'
}

func isBaseDigit(c byte, base int) bool {
	switch base {
	case 2:
		return c == '0' || c == '1' || isWildDigit(c)
	case 8:
		return c >= '0' && c <= '7' || isWildDigit(c)
	case 10:
		return c >= '0' && c <= '9'
	case 16:
		return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' ||
			isWildDigit(c)
	}
	return false
}

// parseDigits converts a digit string in the given base to little-endian
// 64-bit value words plus a wildcard mask. x/z/? digits read as value 0
// with all their bits marked wild (two-valued synthesis semantics; the
// mask matters only for casez/casex labels).
func parseDigits(digits string, base int) (words, wild []uint64, err error) {
	words = []uint64{0}
	wild = []uint64{0}
	switch base {
	case 2, 8, 16:
		shift := map[int]uint{2: 1, 8: 3, 16: 4}[base]
		for _, ch := range digits {
			v, w, err := digitVal(byte(ch), base, shift)
			if err != nil {
				return nil, nil, err
			}
			words = shlWords(words, shift)
			wild = shlWords(wild, shift)
			words[0] |= uint64(v)
			wild[0] |= uint64(w)
		}
	case 10:
		for _, ch := range digits {
			if ch < '0' || ch > '9' {
				return nil, nil, fmt.Errorf("invalid decimal digit %q", string(ch))
			}
			words = mulAddWords(words, 10, uint64(ch-'0'))
		}
	default:
		return nil, nil, fmt.Errorf("unsupported base %d", base)
	}
	return words, wild, nil
}

// digitVal decodes one digit; wildcard digits yield value 0 with all
// `bitsPerDigit` wild bits set.
func digitVal(c byte, base int, bitsPerDigit uint) (val, wild int, err error) {
	switch {
	case isWildDigit(c):
		return 0, 1<<bitsPerDigit - 1, nil
	case c >= '0' && c <= '9':
		return int(c - '0'), 0, nil
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10, 0, nil
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10, 0, nil
	}
	return 0, 0, fmt.Errorf("invalid base-%d digit %q", base, string(c))
}

func shlWords(w []uint64, by uint) []uint64 {
	carry := uint64(0)
	for i := range w {
		nc := w[i] >> (64 - by)
		w[i] = w[i]<<by | carry
		carry = nc
	}
	if carry != 0 {
		w = append(w, carry)
	}
	return w
}

func mulAddWords(w []uint64, mul, add uint64) []uint64 {
	carry := add
	for i := range w {
		hi, lo := bits.Mul64(w[i], mul)
		lo, c := bits.Add64(lo, carry, 0)
		w[i] = lo
		carry = hi + c
	}
	if carry != 0 {
		w = append(w, carry)
	}
	return w
}

// truncate clamps the stored words to the declared width.
func (n *Number) truncate() {
	nw := (n.Width + 63) / 64
	clamp := func(w []uint64) []uint64 {
		for len(w) < nw {
			w = append(w, 0)
		}
		w = w[:nw]
		if rem := uint(n.Width % 64); rem != 0 {
			w[nw-1] &= (1 << rem) - 1
		}
		return w
	}
	n.Words = clamp(n.Words)
	if n.Wild != nil {
		n.Wild = clamp(n.Wild)
	}
}

// Lex tokenises a complete source string; used by tests and the parser.
func Lex(file, src string) ([]Token, error) {
	lx := newLexer(file, src)
	var out []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

// FormatNumber renders a Number as a Verilog literal (for diagnostics).
func FormatNumber(n Number) string {
	var b strings.Builder
	if n.Sized {
		fmt.Fprintf(&b, "%d", n.Width)
	}
	b.WriteString("'h")
	started := false
	for i := len(n.Words) - 1; i >= 0; i-- {
		if !started {
			if n.Words[i] == 0 && i > 0 {
				continue
			}
			fmt.Fprintf(&b, "%x", n.Words[i])
			started = true
		} else {
			fmt.Fprintf(&b, "%016x", n.Words[i])
		}
	}
	return b.String()
}
