package verilog

import "testing"

// Fuzz targets: the frontend must never panic on arbitrary input — it
// either parses or returns a SyntaxError. `go test` runs the seed
// corpus; `go test -fuzz=FuzzParse ./internal/verilog` explores further.

var fuzzSeeds = []string{
	"",
	"module m; endmodule",
	"module m(input a, output y); assign y = ~a; endmodule",
	"module m #(parameter W=8)(input [W-1:0] a); endmodule",
	"module m; always @(posedge clk) q <= d; endmodule",
	"module m; wire [3:0] x = 4'b10z1; endmodule",
	"module m; assign {a,b} = c ? d + e : {2{f}}; endmodule",
	"module m; case (x) 2'd0: ; default: ; endcase endmodule",
	"module m; function [7:0] f; input [7:0] v; f = v; endfunction endmodule",
	"module m; generate for (i=0;i<4;i=i+1) begin : g end endgenerate endmodule",
	"128'hdeadbeef_cafebabe_0123456789abcdef",
	"module \x00;",
	"module m; wire w = 1 +",
	"/* unterminated",
	"\"unterminated string",
	"9999999999999999999999999999999",
	"module m; assign x = a[31:0] + b[0 +: 8] - c[7 -: 4]; endmodule",
}

func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex("fuzz.v", src)
		if err == nil && (len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF) {
			t.Fatal("successful lex must end in EOF")
		}
	})
}

func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sf, err := Parse("fuzz.v", src)
		if err == nil && sf == nil {
			t.Fatal("nil result without error")
		}
	})
}
