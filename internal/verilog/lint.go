package verilog

import (
	"fmt"

	"c2nn/internal/irlint/diag"
)

// AST-stage lint rules (VA···). These run on the parsed Design before
// elaboration; the deeper semantic checks (width, hierarchy) stay in
// internal/synth, which reports hard errors of its own.
var (
	// RuleASTUnknownModule fires when an instance names a module the
	// design does not define.
	RuleASTUnknownModule = diag.Register(diag.Rule{
		ID: "VA001", Stage: diag.StageAST, Severity: diag.Error,
		Summary: "instance of a module the design does not define"})
	// RuleASTDupDecl fires when a name is declared twice in one module
	// (two net declarations, or a net colliding with a parameter).
	RuleASTDupDecl = diag.Register(diag.Rule{
		ID: "VA002", Stage: diag.StageAST, Severity: diag.Error,
		Summary: "name declared more than once in a module"})
	// RuleASTUndeclaredPort fires when a header port has no matching
	// directed declaration in the module body (non-ANSI style with the
	// direction declaration missing).
	RuleASTUndeclaredPort = diag.Register(diag.Rule{
		ID: "VA003", Stage: diag.StageAST, Severity: diag.Error,
		Summary: "header port never given a direction declaration"})
	// RuleASTBadConnection fires when a named instance connection
	// references a port the target module does not declare.
	RuleASTBadConnection = diag.Register(diag.Rule{
		ID: "VA004", Stage: diag.StageAST, Severity: diag.Error,
		Summary: "named connection to a port the target module lacks"})
	// RuleASTDupPort fires when the same name appears twice in a
	// module's header port list.
	RuleASTDupPort = diag.Register(diag.Rule{
		ID: "VA005", Stage: diag.StageAST, Severity: diag.Error,
		Summary: "duplicate name in the header port list"})
)

// Lint checks every module of the design, collecting all violations.
func (d *Design) Lint() []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, name := range d.Order {
		ds = append(ds, lintModule(d, d.Modules[name])...)
	}
	return ds
}

func lintModule(d *Design, m *Module) []diag.Diagnostic {
	var ds []diag.Diagnostic
	loc := func(pos Pos) string { return fmt.Sprintf("module %s (%s)", m.Name, pos) }

	// Header port list: duplicates, and direction coverage.
	headerPorts := make(map[string]bool, len(m.Ports))
	for _, p := range m.Ports {
		if headerPorts[p.Name] {
			ds = append(ds, RuleASTDupPort.New(loc(p.Pos),
				"port %q listed twice in the header", p.Name))
			continue
		}
		headerPorts[p.Name] = true
	}

	// Declarations: walk top-level items (generate bodies introduce
	// their own scopes during elaboration and are skipped here).
	declared := make(map[string]Pos)
	directed := make(map[string]bool) // names with a port direction
	declare := func(name string, pos Pos) {
		if prev, dup := declared[name]; dup {
			ds = append(ds, RuleASTDupDecl.New(loc(pos),
				"%q already declared at %s", name, prev))
			return
		}
		declared[name] = pos
	}
	for _, p := range m.Ports {
		if p.Decl != nil && p.Decl.Dir != DirNone {
			directed[p.Name] = true
		}
	}
	for _, item := range m.Items {
		switch it := item.(type) {
		case *NetDecl:
			for _, dn := range it.Names {
				// Non-ANSI port declarations (`input x;` then `wire x;`
				// or `reg x;`) legally re-declare the name: only treat
				// a second *directed* declaration as a duplicate.
				if it.Dir != DirNone {
					if directed[dn.Name] {
						ds = append(ds, RuleASTDupDecl.New(loc(dn.Pos),
							"port %q given a direction twice", dn.Name))
					}
					directed[dn.Name] = true
				} else {
					declare(dn.Name, dn.Pos)
				}
			}
		case *ParamDecl:
			declare(it.Name, it.Pos)
		case *FunctionDecl:
			declare(it.Name, it.Pos)
		case *GenvarDecl:
			for _, name := range it.Names {
				declare(name, it.Pos)
			}
		case *Instance:
			target, ok := d.Modules[it.ModuleName]
			if !ok {
				ds = append(ds, RuleASTUnknownModule.New(loc(it.Pos),
					"instance %q references undefined module %q", it.Name, it.ModuleName))
				continue
			}
			targetPorts := make(map[string]bool, len(target.Ports))
			for _, p := range target.Ports {
				targetPorts[p.Name] = true
			}
			for _, c := range it.Ports {
				if c.Named && !targetPorts[c.Name] {
					ds = append(ds, RuleASTBadConnection.New(loc(c.Pos),
						"instance %q connects port %q, module %q has no such port",
						it.Name, c.Name, it.ModuleName))
				}
			}
			targetParams := make(map[string]bool, len(target.Params))
			for _, p := range target.Params {
				targetParams[p.Name] = true
			}
			for _, c := range it.Params {
				if c.Named && !targetParams[c.Name] {
					ds = append(ds, RuleASTBadConnection.New(loc(c.Pos),
						"instance %q overrides parameter %q, module %q has no such parameter",
						it.Name, c.Name, it.ModuleName))
				}
			}
		}
	}

	for _, p := range m.Ports {
		if !directed[p.Name] {
			ds = append(ds, RuleASTUndeclaredPort.New(loc(p.Pos),
				"port %q has no input/output declaration", p.Name))
		}
	}
	return ds
}
