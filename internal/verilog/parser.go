package verilog

import (
	"fmt"
	"sort"
)

type parser struct {
	toks []Token
	pos  int
}

// Parse parses one Verilog source file.
func Parse(path, src string) (*SourceFile, error) {
	toks, err := Lex(path, src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sf := &SourceFile{Path: path}
	for p.peek().Kind != TokEOF {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		sf.Modules = append(sf.Modules, m)
	}
	return sf, nil
}

// BuildDesign parses the given sources (path -> contents) and collects
// their modules into one design library. Duplicate module names are an
// error.
func BuildDesign(sources map[string]string, order []string) (*Design, error) {
	d := &Design{Modules: make(map[string]*Module)}
	if order == nil {
		// Sort the paths: map iteration order would make Design.Order —
		// and with it top-module inference and diagnostic ordering —
		// vary run to run.
		for path := range sources {
			order = append(order, path)
		}
		sort.Strings(order)
	}
	for _, path := range order {
		sf, err := Parse(path, sources[path])
		if err != nil {
			return nil, err
		}
		for _, m := range sf.Modules {
			if _, dup := d.Modules[m.Name]; dup {
				return nil, fmt.Errorf("%s: duplicate module %q", m.Pos, m.Name)
			}
			d.Modules[m.Name] = m
			d.Order = append(d.Order, m.Name)
		}
	}
	return d, nil
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peekN(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind TokenKind) bool {
	if p.peek().Kind == kind {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	t := p.peek()
	if t.Kind != kind {
		return t, p.errorf("expected %s, found %s", kind, describe(t))
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

func describe(t Token) string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokNumber:
		return "number " + FormatNumber(t.Num)
	case TokEOF:
		return "end of file"
	}
	return fmt.Sprintf("%q", t.Kind.String())
}

// --- Module level ---

func (p *parser) parseModule() (*Module, error) {
	start, err := p.expect(TokModule)
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	m := &Module{Name: nameTok.Text, Pos: start.Pos}

	if p.accept(TokHash) {
		if err := p.parseHeaderParams(m); err != nil {
			return nil, err
		}
	}
	if p.accept(TokLParen) {
		if err := p.parsePortList(m); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	for p.peek().Kind != TokEndmodule {
		if p.peek().Kind == TokEOF {
			return nil, p.errorf("unexpected end of file inside module %q", m.Name)
		}
		items, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, items...)
	}
	p.next() // endmodule
	return m, nil
}

func (p *parser) parseHeaderParams(m *Module) error {
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	for {
		if !p.accept(TokParameter) {
			// `#(parameter A=..., B=...)` allows omitting the keyword on
			// continuation declarators.
		}
		// Optional range on the parameter: skip it.
		if p.peek().Kind == TokLBracket {
			if err := p.skipRange(); err != nil {
				return err
			}
		}
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokAssignOp); err != nil {
			return err
		}
		val, err := p.parseExpr()
		if err != nil {
			return err
		}
		m.Params = append(m.Params, &ParamDecl{Pos: nameTok.Pos, Name: nameTok.Text, Value: val})
		if p.accept(TokComma) {
			continue
		}
		break
	}
	_, err := p.expect(TokRParen)
	return err
}

func (p *parser) skipRange() error {
	if _, err := p.expect(TokLBracket); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		switch p.next().Kind {
		case TokLBracket:
			depth++
		case TokRBracket:
			depth--
		case TokEOF:
			return p.errorf("unexpected end of file in range")
		}
	}
	return nil
}

func (p *parser) parsePortList(m *Module) error {
	if p.accept(TokRParen) {
		return nil
	}
	// Track the most recent ANSI declaration so bare continuation names
	// (`input [3:0] a, b`) inherit direction and range.
	var current *NetDecl
	for {
		t := p.peek()
		switch t.Kind {
		case TokInput, TokOutput, TokInout:
			decl, name, err := p.parseANSIPortDecl()
			if err != nil {
				return err
			}
			current = decl
			m.Ports = append(m.Ports, &PortRef{Name: name, Pos: t.Pos, Decl: decl})
		case TokIdent:
			nameTok := p.next()
			if current != nil {
				// Continuation of the previous ANSI declaration.
				inherit := *current
				inherit.Names = []DeclName{{Name: nameTok.Text, Pos: nameTok.Pos}}
				cp := inherit
				m.Ports = append(m.Ports, &PortRef{Name: nameTok.Text, Pos: nameTok.Pos, Decl: &cp})
			} else {
				// Non-ANSI header: just the name.
				m.Ports = append(m.Ports, &PortRef{Name: nameTok.Text, Pos: nameTok.Pos})
			}
		default:
			return p.errorf("expected port declaration, found %s", describe(t))
		}
		if p.accept(TokComma) {
			continue
		}
		break
	}
	_, err := p.expect(TokRParen)
	return err
}

func (p *parser) parseANSIPortDecl() (*NetDecl, string, error) {
	decl := &NetDecl{Pos: p.peek().Pos}
	switch p.next().Kind {
	case TokInput:
		decl.Dir = DirInput
	case TokOutput:
		decl.Dir = DirOutput
	case TokInout:
		decl.Dir = DirInout
	}
	if p.accept(TokWire) {
	} else if p.accept(TokReg) {
		decl.IsReg = true
	}
	if p.accept(TokSigned) {
		decl.Signed = true
	}
	if p.peek().Kind == TokLBracket {
		msb, lsb, err := p.parseVectorRange()
		if err != nil {
			return nil, "", err
		}
		decl.MSB, decl.LSB = msb, lsb
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, "", err
	}
	decl.Names = []DeclName{{Name: nameTok.Text, Pos: nameTok.Pos}}
	return decl, nameTok.Text, nil
}

func (p *parser) parseVectorRange() (msb, lsb Expr, err error) {
	if _, err = p.expect(TokLBracket); err != nil {
		return
	}
	if msb, err = p.parseExpr(); err != nil {
		return
	}
	if _, err = p.expect(TokColon); err != nil {
		return
	}
	if lsb, err = p.parseExpr(); err != nil {
		return
	}
	_, err = p.expect(TokRBracket)
	return
}

// parseItem parses one module body item; it may expand to several AST
// items (e.g. a declaration list).
func (p *parser) parseItem() ([]Item, error) {
	t := p.peek()
	switch t.Kind {
	case TokInput, TokOutput, TokInout, TokWire, TokReg, TokInteger:
		d, err := p.parseNetDecl()
		if err != nil {
			return nil, err
		}
		return []Item{d}, nil
	case TokParameter, TokLocalparam:
		return p.parseParamDecls()
	case TokAssign:
		return p.parseContAssigns()
	case TokAlways:
		a, err := p.parseAlways()
		if err != nil {
			return nil, err
		}
		return []Item{a}, nil
	case TokInitial:
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return []Item{&InitialBlock{Pos: t.Pos, Body: body}}, nil
	case TokFunction:
		f, err := p.parseFunction()
		if err != nil {
			return nil, err
		}
		return []Item{f}, nil
	case TokGenvar:
		p.next()
		g := &GenvarDecl{Pos: t.Pos}
		for {
			nameTok, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			g.Names = append(g.Names, nameTok.Text)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return []Item{g}, nil
	case TokGenerate:
		p.next()
		var items []Item
		for p.peek().Kind != TokEndgenerate {
			if p.peek().Kind == TokEOF {
				return nil, p.errorf("unexpected end of file in generate block")
			}
			sub, err := p.parseGenerateItem()
			if err != nil {
				return nil, err
			}
			items = append(items, sub...)
		}
		p.next()
		return items, nil
	case TokFor, TokIf:
		// Generate-for/if without the generate keyword (Verilog-2005
		// allows this at module scope).
		return p.parseGenerateItem()
	case TokIdent:
		inst, err := p.parseInstance()
		if err != nil {
			return nil, err
		}
		return []Item{inst}, nil
	}
	return nil, p.errorf("unexpected %s at module scope", describe(t))
}

func (p *parser) parseGenerateItem() ([]Item, error) {
	t := p.peek()
	switch t.Kind {
	case TokFor:
		g, err := p.parseGenerateFor()
		if err != nil {
			return nil, err
		}
		return []Item{g}, nil
	case TokIf:
		g, err := p.parseGenerateIf()
		if err != nil {
			return nil, err
		}
		return []Item{g}, nil
	default:
		return p.parseItem()
	}
}

func (p *parser) parseGenerateFor() (*GenerateFor, error) {
	start, _ := p.expect(TokFor)
	g := &GenerateFor{Pos: start.Pos}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	varTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	g.Var = varTok.Text
	if _, err := p.expect(TokAssignOp); err != nil {
		return nil, err
	}
	if g.Init, err = p.parseExpr(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if g.Cond, err = p.parseExpr(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	stepTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	g.StepVar = stepTok.Text
	if _, err := p.expect(TokAssignOp); err != nil {
		return nil, err
	}
	if g.Step, err = p.parseExpr(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	// Body: begin [: label] items end, or a single item.
	if p.accept(TokBegin) {
		if p.accept(TokColon) {
			lbl, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			g.Label = lbl.Text
		}
		for p.peek().Kind != TokEnd {
			if p.peek().Kind == TokEOF {
				return nil, p.errorf("unexpected end of file in generate-for body")
			}
			items, err := p.parseGenerateItem()
			if err != nil {
				return nil, err
			}
			g.Body = append(g.Body, items...)
		}
		p.next()
	} else {
		items, err := p.parseGenerateItem()
		if err != nil {
			return nil, err
		}
		g.Body = items
	}
	return g, nil
}

func (p *parser) parseGenerateIf() (*GenerateIf, error) {
	start, _ := p.expect(TokIf)
	g := &GenerateIf{Pos: start.Pos}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var err error
	if g.Cond, err = p.parseExpr(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	parseArm := func() ([]Item, error) {
		if p.accept(TokBegin) {
			if p.accept(TokColon) {
				if _, err := p.expect(TokIdent); err != nil {
					return nil, err
				}
			}
			var items []Item
			for p.peek().Kind != TokEnd {
				if p.peek().Kind == TokEOF {
					return nil, p.errorf("unexpected end of file in generate-if body")
				}
				sub, err := p.parseGenerateItem()
				if err != nil {
					return nil, err
				}
				items = append(items, sub...)
			}
			p.next()
			return items, nil
		}
		return p.parseGenerateItem()
	}
	if g.Then, err = parseArm(); err != nil {
		return nil, err
	}
	if p.accept(TokElse) {
		if g.Else, err = parseArm(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func (p *parser) parseNetDecl() (*NetDecl, error) {
	decl := &NetDecl{Pos: p.peek().Pos}
	switch p.peek().Kind {
	case TokInput:
		decl.Dir = DirInput
		p.next()
	case TokOutput:
		decl.Dir = DirOutput
		p.next()
	case TokInout:
		decl.Dir = DirInout
		p.next()
	}
	switch p.peek().Kind {
	case TokWire:
		p.next()
	case TokReg:
		decl.IsReg = true
		p.next()
	case TokInteger:
		// `integer` is a 32-bit signed reg.
		decl.IsReg = true
		decl.Signed = true
		p.next()
		decl.MSB = &NumberExpr{Num: Number{Words: []uint64{31}, Width: 32}}
		decl.LSB = &NumberExpr{Num: Number{Words: []uint64{0}, Width: 32}}
	}
	if p.accept(TokSigned) {
		decl.Signed = true
	}
	if p.peek().Kind == TokLBracket && decl.MSB == nil {
		msb, lsb, err := p.parseVectorRange()
		if err != nil {
			return nil, err
		}
		decl.MSB, decl.LSB = msb, lsb
	}
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		dn := DeclName{Name: nameTok.Text, Pos: nameTok.Pos}
		if p.peek().Kind == TokLBracket {
			// Memory array dimension.
			if dn.AMSB, dn.ALSB, err = p.parseVectorRange(); err != nil {
				return nil, err
			}
		}
		if p.accept(TokAssignOp) {
			if dn.Init, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		decl.Names = append(decl.Names, dn)
		if p.accept(TokComma) {
			continue
		}
		break
	}
	_, err := p.expect(TokSemi)
	return decl, err
}

func (p *parser) parseParamDecls() ([]Item, error) {
	local := p.peek().Kind == TokLocalparam
	p.next()
	// Optional range: skip.
	if p.peek().Kind == TokLBracket {
		if err := p.skipRange(); err != nil {
			return nil, err
		}
	}
	var items []Item
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssignOp); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, &ParamDecl{Pos: nameTok.Pos, Local: local, Name: nameTok.Text, Value: val})
		if p.accept(TokComma) {
			continue
		}
		break
	}
	_, err := p.expect(TokSemi)
	return items, err
}

func (p *parser) parseContAssigns() ([]Item, error) {
	p.next() // assign
	var items []Item
	for {
		lhs, err := p.parseLValue()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssignOp); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, &ContAssign{Pos: ExprPos(lhs), LHS: lhs, RHS: rhs})
		if p.accept(TokComma) {
			continue
		}
		break
	}
	_, err := p.expect(TokSemi)
	return items, err
}

func (p *parser) parseAlways() (*AlwaysBlock, error) {
	start, _ := p.expect(TokAlways)
	a := &AlwaysBlock{Pos: start.Pos}
	if _, err := p.expect(TokAt); err != nil {
		return nil, err
	}
	if p.accept(TokStar) {
		a.Star = true
	} else {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if p.accept(TokStar) {
			a.Star = true
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		} else {
			for {
				item := SensItem{}
				switch p.peek().Kind {
				case TokPosedge:
					p.next()
					item.Edge = EdgePos
				case TokNegedge:
					p.next()
					item.Edge = EdgeNeg
				}
				sigTok, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				item.Signal = sigTok.Text
				a.Sens = append(a.Sens, item)
				if p.accept(TokOr) || p.accept(TokComma) {
					continue
				}
				break
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	a.Body = body
	return a, nil
}

func (p *parser) parseFunction() (*FunctionDecl, error) {
	start, _ := p.expect(TokFunction)
	f := &FunctionDecl{Pos: start.Pos}
	p.accept(TokSigned)
	if p.peek().Kind == TokLBracket {
		msb, lsb, err := p.parseVectorRange()
		if err != nil {
			return nil, err
		}
		f.MSB, f.LSB = msb, lsb
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	f.Name = nameTok.Text
	// ANSI-style argument list is permitted; classic style declares
	// inputs in the body.
	if p.accept(TokLParen) {
		for p.peek().Kind != TokRParen {
			d, err := p.parseFunctionArg()
			if err != nil {
				return nil, err
			}
			f.Inputs = append(f.Inputs, d)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	// Body declarations then a single statement.
	for {
		switch p.peek().Kind {
		case TokInput:
			d, err := p.parseNetDecl()
			if err != nil {
				return nil, err
			}
			f.Inputs = append(f.Inputs, d)
			continue
		case TokReg, TokInteger:
			d, err := p.parseNetDecl()
			if err != nil {
				return nil, err
			}
			f.Locals = append(f.Locals, d)
			continue
		}
		break
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	if _, err := p.expect(TokEndfunction); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseFunctionArg() (*NetDecl, error) {
	decl := &NetDecl{Pos: p.peek().Pos, Dir: DirInput}
	if !p.accept(TokInput) {
		return nil, p.errorf("function arguments must be inputs")
	}
	p.accept(TokWire)
	p.accept(TokReg)
	if p.accept(TokSigned) {
		decl.Signed = true
	}
	if p.peek().Kind == TokLBracket {
		msb, lsb, err := p.parseVectorRange()
		if err != nil {
			return nil, err
		}
		decl.MSB, decl.LSB = msb, lsb
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	decl.Names = []DeclName{{Name: nameTok.Text, Pos: nameTok.Pos}}
	return decl, nil
}

func (p *parser) parseInstance() (*Instance, error) {
	modTok, _ := p.expect(TokIdent)
	inst := &Instance{Pos: modTok.Pos, ModuleName: modTok.Text}
	if p.accept(TokHash) {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		conns, err := p.parseConnections()
		if err != nil {
			return nil, err
		}
		inst.Params = conns
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	inst.Name = nameTok.Text
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.peek().Kind != TokRParen {
		conns, err := p.parseConnections()
		if err != nil {
			return nil, err
		}
		inst.Ports = conns
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	_, err = p.expect(TokSemi)
	return inst, err
}

func (p *parser) parseConnections() ([]Connection, error) {
	var out []Connection
	for {
		c := Connection{Pos: p.peek().Pos}
		if p.accept(TokDot) {
			nameTok, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			c.Name = nameTok.Text
			c.Named = true
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			if p.peek().Kind != TokRParen {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Expr = e
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Expr = e
		}
		out = append(out, c)
		if p.accept(TokComma) {
			continue
		}
		return out, nil
	}
}

// --- Statements ---

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch t.Kind {
	case TokBegin:
		p.next()
		if p.accept(TokColon) {
			if _, err := p.expect(TokIdent); err != nil {
				return nil, err
			}
		}
		b := &Block{Pos: t.Pos}
		for p.peek().Kind != TokEnd {
			if p.peek().Kind == TokEOF {
				return nil, p.errorf("unexpected end of file in begin/end block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			b.Stmts = append(b.Stmts, s)
		}
		p.next()
		return b, nil
	case TokIf:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &If{Pos: t.Pos, Cond: cond, Then: then}
		if p.accept(TokElse) {
			if st.Else, err = p.parseStmt(); err != nil {
				return nil, err
			}
		}
		return st, nil
	case TokCase, TokCasez, TokCasex:
		return p.parseCase()
	case TokFor:
		return p.parseFor()
	case TokSemi:
		p.next()
		return &NullStmt{Pos: t.Pos}, nil
	default:
		return p.parseAssignStmt()
	}
}

func (p *parser) parseCase() (Stmt, error) {
	t := p.next()
	kind := CaseNormal
	switch t.Kind {
	case TokCasez:
		kind = CaseZ
	case TokCasex:
		kind = CaseX
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	sel, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	cs := &Case{Pos: t.Pos, Kind: kind, Expr: sel}
	for p.peek().Kind != TokEndcase {
		if p.peek().Kind == TokEOF {
			return nil, p.errorf("unexpected end of file in case statement")
		}
		item := CaseItem{Pos: p.peek().Pos}
		if p.accept(TokDefault) {
			item.Default = true
			p.accept(TokColon)
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Labels = append(item.Labels, e)
				if p.accept(TokComma) {
					continue
				}
				break
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		item.Body = body
		cs.Items = append(cs.Items, item)
	}
	p.next()
	return cs, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t, _ := p.expect(TokFor)
	f := &For{Pos: t.Pos}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	varTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	f.Var = varTok.Text
	if _, err := p.expect(TokAssignOp); err != nil {
		return nil, err
	}
	if f.Init, err = p.parseExpr(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if f.Cond, err = p.parseExpr(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	stepTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	f.StepVar = stepTok.Text
	if _, err := p.expect(TokAssignOp); err != nil {
		return nil, err
	}
	if f.Step, err = p.parseExpr(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if f.Body, err = p.parseStmt(); err != nil {
		return nil, err
	}
	return f, nil
}

// parseLValue parses an assignment target: an identifier with optional
// bit/part selects, or a concatenation of lvalues. Using a restricted
// grammar here keeps `q <= x` from being parsed as a less-equal
// comparison.
func (p *parser) parseLValue() (Expr, error) {
	if p.peek().Kind == TokLBrace {
		t := p.next()
		cat := &Concat{Pos: t.Pos}
		for {
			e, err := p.parseLValue()
			if err != nil {
				return nil, err
			}
			cat.Parts = append(cat.Parts, e)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		return cat, nil
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	var x Expr = &Ident{Pos: nameTok.Pos, Name: nameTok.Text}
	return p.parseSelects(x)
}

// parseSelects parses any trailing [..] selects onto x.
func (p *parser) parseSelects(x Expr) (Expr, error) {
	for p.peek().Kind == TokLBracket {
		lb := p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch p.peek().Kind {
		case TokColon:
			p.next()
			second, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &RangeSelect{Pos: lb.Pos, X: x, MSB: first, LSB: second, Mode: RangeConst}
		case TokPlus, TokMinus:
			mode := RangeUp
			if p.peek().Kind == TokMinus {
				mode = RangeDown
			}
			p.next()
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			width, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &RangeSelect{Pos: lb.Pos, X: x, MSB: first, LSB: width, Mode: mode}
		default:
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &Index{Pos: lb.Pos, X: x, I: first}
		}
	}
	return x, nil
}

func (p *parser) parseAssignStmt() (Stmt, error) {
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	var blocking bool
	switch p.peek().Kind {
	case TokAssignOp:
		blocking = true
		p.next()
	case TokNonblock:
		blocking = false
		p.next()
	default:
		return nil, p.errorf("expected assignment operator, found %s", describe(p.peek()))
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &Assign{Pos: ExprPos(lhs), Blocking: blocking, LHS: lhs, RHS: rhs}, nil
}

// --- Expressions (precedence-climbing) ---

// Binding powers per Verilog-2005 operator precedence.
func binaryPower(k TokenKind) int {
	switch k {
	case TokOrOr:
		return 2
	case TokAndAnd:
		return 3
	case TokPipe, TokTildePipe:
		return 4
	case TokCaret, TokTildeCaret:
		return 5
	case TokAmp, TokTildeAmp:
		return 6
	case TokEq, TokNeq, TokCaseEq, TokCaseNeq:
		return 7
	case TokLt, TokGt, TokGe, TokNonblock: // <= as comparison
		return 8
	case TokShl, TokShr, TokAShr:
		return 9
	case TokPlus, TokMinus:
		return 10
	case TokStar, TokSlash, TokPercent:
		return 11
	case TokPower:
		return 12
	}
	return 0
}

func (p *parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept(TokQuestion) {
		return cond, nil
	}
	a, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	b, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{Pos: ExprPos(cond), Cond: cond, A: a, B: b}, nil
}

func (p *parser) parseBinary(minPower int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek().Kind
		power := binaryPower(op)
		if power == 0 || power < minPower {
			return lhs, nil
		}
		// `+:` / `-:` belong to an indexed part select, not to this
		// expression; stop so parsePostfix can consume them.
		if (op == TokPlus || op == TokMinus) && p.peekN(1).Kind == TokColon {
			return lhs, nil
		}
		p.next()
		// ** is right-associative; everything else left.
		nextMin := power + 1
		if op == TokPower {
			nextMin = power
		}
		rhs, err := p.parseBinary(nextMin)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: ExprPos(lhs), Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokTilde, TokNot, TokMinus, TokPlus, TokAmp, TokPipe, TokCaret,
		TokTildeAmp, TokTildePipe, TokTildeCaret:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokPlus {
			return x, nil // unary plus is a no-op
		}
		return &Unary{Pos: t.Pos, Op: t.Kind, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return p.parseSelects(x)
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokIdent:
		p.next()
		if p.peek().Kind == TokLParen {
			// Function call.
			p.next()
			call := &Call{Pos: t.Pos, Name: t.Text}
			if p.peek().Kind != TokRParen {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	case TokNumber:
		p.next()
		return &NumberExpr{Pos: t.Pos, Num: t.Num}, nil
	case TokLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokLBrace:
		p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().Kind == TokLBrace {
			// Replication {n{expr}}.
			p.next()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
			return &Repl{Pos: t.Pos, Count: first, X: inner}, nil
		}
		cat := &Concat{Pos: t.Pos, Parts: []Expr{first}}
		for p.accept(TokComma) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cat.Parts = append(cat.Parts, e)
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		return cat, nil
	}
	return nil, p.errorf("expected expression, found %s", describe(t))
}

// ExprPos returns the source position of an expression node.
func ExprPos(e Expr) Pos {
	switch x := e.(type) {
	case *Ident:
		return x.Pos
	case *NumberExpr:
		return x.Pos
	case *Unary:
		return x.Pos
	case *Binary:
		return x.Pos
	case *Ternary:
		return x.Pos
	case *Index:
		return x.Pos
	case *RangeSelect:
		return x.Pos
	case *Concat:
		return x.Pos
	case *Repl:
		return x.Pos
	case *Call:
		return x.Pos
	}
	return Pos{}
}
