package verilog

// This file defines the abstract syntax tree produced by the parser. The
// tree is deliberately close to the concrete syntax; all semantic
// resolution (widths, parameter values, hierarchy) happens during
// elaboration in internal/synth.

// SourceFile is the parse result of one Verilog file.
type SourceFile struct {
	Path    string
	Modules []*Module
}

// Design is a set of parsed files resolved into a module library.
type Design struct {
	Modules map[string]*Module
	Order   []string // declaration order, for deterministic output
}

// Module is a module declaration.
type Module struct {
	Name   string
	Pos    Pos
	Params []*ParamDecl // header parameters #(...) and body parameter decls
	Ports  []*PortRef   // header port order
	Items  []Item
}

// PortRef is an entry of the module header port list. For ANSI headers
// the direction and range are attached; for non-ANSI headers only the
// name is known and the body declarations supply the rest.
type PortRef struct {
	Name string
	Pos  Pos
	Decl *NetDecl // non-nil for ANSI-style declarations
}

// Item is a module body item.
type Item interface{ itemNode() }

// Direction of a port declaration.
type Direction uint8

// Port directions; DirNone marks plain wire/reg declarations.
const (
	DirNone Direction = iota
	DirInput
	DirOutput
	DirInout
)

// String returns the Verilog spelling of the direction.
func (d Direction) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	case DirInout:
		return "inout"
	}
	return "wire"
}

// NetDecl declares one or more nets/regs, optionally with a vector range
// and port direction. Width expressions are resolved at elaboration.
type NetDecl struct {
	Pos    Pos
	Dir    Direction
	IsReg  bool
	Signed bool
	// MSB/LSB are nil for scalar declarations.
	MSB, LSB Expr
	Names    []DeclName
}

func (*NetDecl) itemNode() {}

// DeclName is one declarator within a NetDecl, with an optional
// initialiser (`wire x = expr;`) and an optional memory-array dimension
// (`reg [7:0] mem [0:15];` — AMSB/ALSB non-nil marks an array).
type DeclName struct {
	Name       string
	Pos        Pos
	Init       Expr // may be nil
	AMSB, ALSB Expr // array bounds; nil for plain nets
}

// ParamDecl declares a parameter or localparam.
type ParamDecl struct {
	Pos   Pos
	Local bool
	Name  string
	Value Expr
}

func (*ParamDecl) itemNode() {}

// ContAssign is a continuous assignment: assign LHS = RHS;
type ContAssign struct {
	Pos Pos
	LHS Expr // Ident, Index, RangeSelect or Concat of those
	RHS Expr
}

func (*ContAssign) itemNode() {}

// EdgeKind describes a sensitivity-list entry.
type EdgeKind uint8

// Sensitivity edges. EdgeAny covers level-sensitive entries and @*.
const (
	EdgeAny EdgeKind = iota
	EdgePos
	EdgeNeg
)

// SensItem is one event in an always sensitivity list.
type SensItem struct {
	Edge   EdgeKind
	Signal string // empty for @*
}

// AlwaysBlock is an always construct. Combinational blocks have
// Star == true or only EdgeAny items; clocked blocks have edge items.
type AlwaysBlock struct {
	Pos  Pos
	Star bool
	Sens []SensItem
	Body Stmt
}

func (*AlwaysBlock) itemNode() {}

// InitialBlock is parsed and ignored by synthesis (testbench construct).
type InitialBlock struct {
	Pos  Pos
	Body Stmt
}

func (*InitialBlock) itemNode() {}

// Instance is a module instantiation.
type Instance struct {
	Pos        Pos
	ModuleName string
	Name       string
	// ParamOverrides: by name (named true) or by position.
	Params []Connection
	Ports  []Connection
}

func (*Instance) itemNode() {}

// Connection is one .name(expr) or positional expr binding.
type Connection struct {
	Pos   Pos
	Name  string // empty for positional
	Named bool
	Expr  Expr // nil for unconnected .name()
}

// FunctionDecl is a Verilog function: a purely combinational,
// single-output subroutine. The return value is assigned to the function
// name inside the body.
type FunctionDecl struct {
	Pos      Pos
	Name     string
	MSB, LSB Expr // return range, nil for 1-bit
	Inputs   []*NetDecl
	Locals   []*NetDecl
	Body     Stmt
}

func (*FunctionDecl) itemNode() {}

// GenvarDecl declares generate loop variables.
type GenvarDecl struct {
	Pos   Pos
	Names []string
}

func (*GenvarDecl) itemNode() {}

// GenerateFor is a generate-for region replicating its body items.
type GenerateFor struct {
	Pos     Pos
	Var     string
	Init    Expr
	Cond    Expr
	StepVar string
	Step    Expr
	Label   string
	Body    []Item
}

func (*GenerateFor) itemNode() {}

// GenerateIf is a generate-if region selecting items at elaboration.
type GenerateIf struct {
	Pos  Pos
	Cond Expr
	Then []Item
	Else []Item
}

func (*GenerateIf) itemNode() {}

// --- Statements ---

// Stmt is a procedural statement inside always/initial/function bodies.
type Stmt interface{ stmtNode() }

// Block is a begin/end statement sequence.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

func (*Block) stmtNode() {}

// Assign is a procedural assignment. Blocking is true for '=', false
// for '<='.
type Assign struct {
	Pos      Pos
	Blocking bool
	LHS      Expr
	RHS      Expr
}

func (*Assign) stmtNode() {}

// If is an if/else statement (Else may be nil).
type If struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt
}

func (*If) stmtNode() {}

// CaseKind distinguishes case variants.
type CaseKind uint8

// Case statement kinds. Casez treats z/? bits in item labels as wild;
// casex additionally treats x as wild (both reduce to the same
// elaboration in two-valued synthesis).
const (
	CaseNormal CaseKind = iota
	CaseZ
	CaseX
)

// CaseItem is one arm of a case statement. Default arms have no labels.
type CaseItem struct {
	Pos     Pos
	Labels  []Expr
	Default bool
	Body    Stmt
}

// Case is a case/casez/casex statement.
type Case struct {
	Pos   Pos
	Kind  CaseKind
	Expr  Expr
	Items []CaseItem
}

func (*Case) stmtNode() {}

// For is a procedural for loop; bounds must be elaboration-time
// constants (the loop is fully unrolled during synthesis).
type For struct {
	Pos     Pos
	Var     string
	Init    Expr
	Cond    Expr
	StepVar string
	Step    Expr
	Body    Stmt
}

func (*For) stmtNode() {}

// NullStmt is a lone semicolon.
type NullStmt struct{ Pos Pos }

func (*NullStmt) stmtNode() {}

// --- Expressions ---

// Expr is an expression node.
type Expr interface{ exprNode() }

// Ident is a name reference.
type Ident struct {
	Pos  Pos
	Name string
}

func (*Ident) exprNode() {}

// NumberExpr is a literal.
type NumberExpr struct {
	Pos Pos
	Num Number
}

func (*NumberExpr) exprNode() {}

// Unary is a prefix operator application. Op is the token kind of the
// operator (TokTilde, TokNot, TokMinus, TokPlus, TokAmp, TokPipe,
// TokCaret, TokTildeAmp, TokTildePipe, TokTildeCaret).
type Unary struct {
	Pos Pos
	Op  TokenKind
	X   Expr
}

func (*Unary) exprNode() {}

// Binary is an infix operator application; Op is the operator token kind.
type Binary struct {
	Pos  Pos
	Op   TokenKind
	X, Y Expr
}

func (*Binary) exprNode() {}

// Ternary is cond ? a : b.
type Ternary struct {
	Pos        Pos
	Cond, A, B Expr
}

func (*Ternary) exprNode() {}

// Index is a single bit or array element select: x[i].
type Index struct {
	Pos Pos
	X   Expr
	I   Expr
}

func (*Index) exprNode() {}

// RangeSelect is a constant part select x[msb:lsb], or the indexed part
// selects x[base +: width] / x[base -: width].
type RangeSelect struct {
	Pos  Pos
	X    Expr
	MSB  Expr // or base expression for +:/-:
	LSB  Expr // or width expression for +:/-:
	Mode RangeMode
}

// RangeMode distinguishes part-select forms.
type RangeMode uint8

// Part-select modes.
const (
	RangeConst RangeMode = iota // [msb:lsb]
	RangeUp                     // [base +: width]
	RangeDown                   // [base -: width]
)

func (*RangeSelect) exprNode() {}

// Concat is {a, b, c} (MSB-first as written).
type Concat struct {
	Pos   Pos
	Parts []Expr
}

func (*Concat) exprNode() {}

// Repl is a replication {n{expr}}.
type Repl struct {
	Pos   Pos
	Count Expr
	X     Expr
}

func (*Repl) exprNode() {}

// Call is a function call f(args).
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (*Call) exprNode() {}
