package verilog

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("t.v", "module m (a, b); assign x = a & ~b; endmodule")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokModule, TokIdent, TokLParen, TokIdent, TokComma, TokIdent,
		TokRParen, TokSemi, TokAssign, TokIdent, TokAssignOp, TokIdent,
		TokAmp, TokTilde, TokIdent, TokSemi, TokEndmodule, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("t.v", `
// line comment
/* block
   comment */ wire w; `+"`timescale 1ns/1ps\n wire v;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokWire, TokIdent, TokSemi, TokWire, TokIdent, TokSemi, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("tokens: %v", got)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Lex("t.v", "/* nope"); err == nil {
		t.Fatal("accepted unterminated block comment")
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src   string
		width int
		sized bool
		val   uint64
	}{
		{"42", 32, false, 42},
		{"8'hFF", 8, true, 255},
		{"8'hff", 8, true, 255},
		{"4'b1010", 4, true, 10},
		{"6'o77", 6, true, 63},
		{"16'd1000", 16, true, 1000},
		{"32'habcd_ef01", 32, true, 0xabcdef01},
		{"8'b1111_0000", 8, true, 0xf0},
		{"3'b101", 3, true, 5},
		{"1'b1", 1, true, 1},
		{"'h1F", 32, false, 0x1f},
		{"8'sd5", 8, true, 5},
		// Truncation to declared size.
		{"4'hFF", 4, true, 0xf},
	}
	for _, c := range cases {
		toks, err := Lex("t.v", c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if toks[0].Kind != TokNumber {
			t.Errorf("%s: kind %s", c.src, toks[0].Kind)
			continue
		}
		n := toks[0].Num
		if n.Width != c.width || n.Sized != c.sized || n.Uint64() != c.val {
			t.Errorf("%s: got width=%d sized=%v val=%d, want %d/%v/%d",
				c.src, n.Width, n.Sized, n.Uint64(), c.width, c.sized, c.val)
		}
	}
}

func TestLexWideNumber(t *testing.T) {
	toks, err := Lex("t.v", "128'hDEADBEEF_00000000_CAFEBABE_12345678")
	if err != nil {
		t.Fatal(err)
	}
	n := toks[0].Num
	if n.Width != 128 || len(n.Words) != 2 {
		t.Fatalf("width=%d words=%d", n.Width, len(n.Words))
	}
	if n.Words[0] != 0xCAFEBABE12345678 || n.Words[1] != 0xDEADBEEF00000000 {
		t.Fatalf("words = %x", n.Words)
	}
	if !n.Bit(127) || n.Bit(95) {
		t.Error("Bit() indexing wrong")
	}
}

func TestLexWildcardNumber(t *testing.T) {
	toks, err := Lex("t.v", "4'b1?0z")
	if err != nil {
		t.Fatal(err)
	}
	n := toks[0].Num
	if n.Uint64() != 0b1000 {
		t.Errorf("value = %b", n.Uint64())
	}
	if !n.WildBit(0) || n.WildBit(1) || !n.WildBit(2) || n.WildBit(3) {
		t.Errorf("wild mask = %b", n.Wild[0])
	}
	if !n.HasWild() {
		t.Error("HasWild = false")
	}
}

func TestLexDecimalBig(t *testing.T) {
	toks, err := Lex("t.v", "'d18446744073709551616") // 2^64
	if err != nil {
		t.Fatal(err)
	}
	n := toks[0].Num
	// Unsized literals clamp to 32 bits, so 2^64 truncates to 0.
	if n.Uint64() != 0 {
		t.Errorf("val = %d", n.Uint64())
	}
}

func TestLexOperators(t *testing.T) {
	src := "== != === !== <= >= << >> >>> && || ~^ ^~ ~& ~| ** < >"
	toks, err := Lex("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokEq, TokNeq, TokCaseEq, TokCaseNeq, TokNonblock, TokGe,
		TokShl, TokShr, TokAShr, TokAndAnd, TokOrOr, TokTildeCaret,
		TokTildeCaret, TokTildeAmp, TokTildePipe, TokPower, TokLt, TokGt, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("f.v", "wire\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("wire pos = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x pos = %v", toks[1].Pos)
	}
	if toks[1].Pos.String() != "f.v:2:3" {
		t.Errorf("pos string = %s", toks[1].Pos)
	}
}

func TestLexBadChar(t *testing.T) {
	if _, err := Lex("t.v", "wire \x01;"); err == nil {
		t.Fatal("accepted control character")
	}
}

func TestFormatNumber(t *testing.T) {
	toks, err := Lex("t.v", "16'hBEEF")
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatNumber(toks[0].Num); s != "16'hbeef" {
		t.Errorf("FormatNumber = %q", s)
	}
}

func TestNumberInt(t *testing.T) {
	toks, err := Lex("t.v", "'d123456")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Num.Int() != 123456 {
		t.Errorf("Int = %d", toks[0].Num.Int())
	}
}
