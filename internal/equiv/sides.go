package equiv

import (
	"fmt"

	"c2nn/internal/aig"
	"c2nn/internal/lutmap"
	"c2nn/internal/netlist"
	"c2nn/internal/sat"
)

// sideIR adapts one intermediate representation to the sweep: it can
// Tseitin-encode itself into a shared CNF and simulate itself under
// bit-parallel stimulus. Both views use the same node numbering so
// simulation signatures index CNF literals directly.
//
// patterns[i] holds the stimulus words of primary input i (64 lanes per
// word); nodeSigs/outSigs use the same layout per node/output.
type sideIR struct {
	name     string
	numNodes int
	encode   func(c *cnf, piLits []sat.Lit) (nodeLits, outLits []sat.Lit, err error)
	sim      func(patterns [][]uint64) (nodeSigs, outSigs [][]uint64)
}

// netlistSide wraps the bit-blasted netlist: nodes are gates in netlist
// order, outputs are CombOutputs (primary outputs then flip-flop D
// pins). Simulation goes through GateKind.EvalWord — a code path
// independent of both the AIG lowering and the LUT mapper.
func netlistSide(nl *netlist.Netlist) (*sideIR, error) {
	lev, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	combIns := nl.CombInputs()
	combOuts := nl.CombOutputs()
	return &sideIR{
		name:     "netlist",
		numNodes: len(nl.Gates),
		encode: func(c *cnf, piLits []sat.Lit) ([]sat.Lit, []sat.Lit, error) {
			gateLits, netLits, err := encodeNetlist(c, nl, piLits)
			if err != nil {
				return nil, nil, err
			}
			outLits := make([]sat.Lit, len(combOuts))
			for j, id := range combOuts {
				l, ok := netLits[id]
				if !ok {
					return nil, nil, fmt.Errorf("equiv: combinational output %s is undriven", nl.NameOf(id))
				}
				outLits[j] = l
			}
			return gateLits, outLits, nil
		},
		sim: func(patterns [][]uint64) ([][]uint64, [][]uint64) {
			words := len(patterns[0])
			vals := make([][]uint64, nl.NumNets())
			vals[netlist.ConstZero] = make([]uint64, words)
			ones := make([]uint64, words)
			for w := range ones {
				ones[w] = ^uint64(0)
			}
			vals[netlist.ConstOne] = ones
			i := 0
			for _, id := range combIns {
				if id == netlist.ConstZero || id == netlist.ConstOne {
					continue
				}
				vals[id] = patterns[i]
				i++
			}
			nodeSigs := make([][]uint64, len(nl.Gates))
			var in [3]uint64
			for _, gi := range lev.Order {
				g := &nl.Gates[gi]
				ins := g.Inputs()
				out := make([]uint64, words)
				for w := 0; w < words; w++ {
					for k, id := range ins {
						in[k] = vals[id][w]
					}
					out[w] = g.Kind.EvalWord(in[:len(ins)])
				}
				vals[g.Out] = out
				nodeSigs[gi] = out
			}
			outSigs := make([][]uint64, len(combOuts))
			for j, id := range combOuts {
				outSigs[j] = vals[id]
			}
			return nodeSigs, outSigs
		},
	}, nil
}

// aigSide wraps the and-inverter graph: nodes are AIG nodes (constant
// and PIs included) and outputs are the given literals in CombOutputs
// order.
func aigSide(g *aig.AIG, outs []aig.Lit) *sideIR {
	return &sideIR{
		name:     "aig",
		numNodes: g.NumNodes(),
		encode: func(c *cnf, piLits []sat.Lit) ([]sat.Lit, []sat.Lit, error) {
			nodeLits, err := encodeAIG(c, g, piLits)
			if err != nil {
				return nil, nil, err
			}
			outLits := make([]sat.Lit, len(outs))
			for j, l := range outs {
				outLits[j] = nodeLits[l.Node()].FlipIf(l.Neg())
			}
			return nodeLits, outLits, nil
		},
		sim: func(patterns [][]uint64) ([][]uint64, [][]uint64) {
			words := len(patterns[0])
			vals := make([][]uint64, g.NumNodes())
			vals[0] = make([]uint64, words) // constant false
			for i := 0; i < g.NumPIs(); i++ {
				vals[i+1] = patterns[i]
			}
			word := func(l aig.Lit, w int) uint64 {
				v := vals[l.Node()][w]
				if l.Neg() {
					return ^v
				}
				return v
			}
			for n := int32(g.NumPIs()) + 1; n < int32(g.NumNodes()); n++ {
				a, b := g.Fanins(n)
				out := make([]uint64, words)
				for w := 0; w < words; w++ {
					out[w] = word(a, w) & word(b, w)
				}
				vals[n] = out
			}
			outSigs := make([][]uint64, len(outs))
			for j, l := range outs {
				sig := make([]uint64, words)
				for w := 0; w < words; w++ {
					sig[w] = word(l, w)
				}
				outSigs[j] = sig
			}
			return vals, outSigs
		},
	}
}

// lutSide wraps the mapped LUT computation graph: nodes are LUTs,
// outputs are Graph.Outputs. Simulation indexes each truth table per
// lane — deliberately the most direct reading of the mapped tables,
// sharing no code with the polynomial or network stages.
func lutSide(g *lutmap.Graph) *sideIR {
	return &sideIR{
		name:     "lut",
		numNodes: len(g.LUTs),
		encode: func(c *cnf, piLits []sat.Lit) ([]sat.Lit, []sat.Lit, error) {
			lutLits, err := encodeLUTGraph(c, g, piLits)
			if err != nil {
				return nil, nil, err
			}
			outLits := make([]sat.Lit, len(g.Outputs))
			for j, r := range g.Outputs {
				if r.IsPI() {
					outLits[j] = piLits[r.PI()]
				} else {
					outLits[j] = lutLits[r.LUT()]
				}
			}
			return lutLits, outLits, nil
		},
		sim: func(patterns [][]uint64) ([][]uint64, [][]uint64) {
			words := len(patterns[0])
			vals := make([][]uint64, len(g.LUTs))
			ref := func(r lutmap.NodeRef) []uint64 {
				if r.IsPI() {
					return patterns[r.PI()]
				}
				return vals[r.LUT()]
			}
			for i := range g.LUTs {
				l := &g.LUTs[i]
				ins := make([][]uint64, len(l.Ins))
				for k, r := range l.Ins {
					ins[k] = ref(r)
				}
				out := make([]uint64, words)
				for w := 0; w < words; w++ {
					var res uint64
					for lane := 0; lane < 64; lane++ {
						var idx uint64
						for k := range ins {
							idx |= (ins[k][w] >> uint(lane) & 1) << uint(k)
						}
						if l.Table.Eval(idx) {
							res |= 1 << uint(lane)
						}
					}
					out[w] = res
				}
				vals[i] = out
			}
			outSigs := make([][]uint64, len(g.Outputs))
			for j, r := range g.Outputs {
				outSigs[j] = ref(r)
			}
			return vals, outSigs
		},
	}
}
