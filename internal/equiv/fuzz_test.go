package equiv

import (
	"testing"

	"c2nn/internal/aig"
	"c2nn/internal/sat"
)

// fuzzAIG grows a small random cone from the fuzz input: 3–5 primary
// inputs, then one gate per byte pair, each picking two operands among
// the nodes built so far (with random polarities) and an AND/OR/XOR/MUX
// connective. Returns nil when the input is too short to add any gate.
func fuzzAIG(data []byte) *aig.AIG {
	if len(data) < 3 {
		return nil
	}
	numPIs := 3 + int(data[0])%3
	g := aig.New(numPIs)
	nodes := make([]aig.Lit, 0, numPIs+len(data))
	for i := 0; i < numPIs; i++ {
		nodes = append(nodes, g.PI(i))
	}
	for i := 1; i+1 < len(data); i += 2 {
		a, b := data[i], data[i+1]
		x := nodes[int(a>>2)%len(nodes)].FlipIf(a&1 == 1)
		y := nodes[int(b>>2)%len(nodes)].FlipIf(b&1 == 1)
		var out aig.Lit
		switch a & 3 {
		case 0:
			out = g.And(x, y)
		case 1:
			out = g.Or(x, y)
		case 2:
			out = g.Xor(x, y)
		default:
			z := nodes[int(a>>4)%len(nodes)]
			out = g.Mux(x, y, z)
		}
		nodes = append(nodes, out)
	}
	return g
}

// FuzzTseitinCone cross-checks the Tseitin encoder against direct AIG
// evaluation: for a random small cone, every node literal under every
// complete PI assignment must solve to exactly the value the semantic
// evaluator computes. A mismatch is an encoder bug — the same bug class
// the miters exist to catch, caught one structural-hashing gate at a
// time.
func FuzzTseitinCone(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{1, 7, 13, 22, 9})
	f.Add([]byte{2, 0xff, 0x80, 0x41, 0x1e, 0x33, 0x2a})
	f.Add([]byte{0, 3, 3, 3, 3, 0x10, 0x21, 0x42, 0x84})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		g := fuzzAIG(data)
		if g == nil {
			return
		}
		c := newCNF()
		piLits := make([]sat.Lit, g.NumPIs())
		for i := range piLits {
			piLits[i] = c.newLit()
		}
		nodeLits, err := encodeAIG(c, g, piLits)
		if err != nil {
			t.Fatal(err)
		}
		pis := make([]bool, g.NumPIs())
		assumps := make([]sat.Lit, g.NumPIs())
		for x := 0; x < 1<<g.NumPIs(); x++ {
			for i := range pis {
				pis[i] = x>>uint(i)&1 == 1
				assumps[i] = piLits[i].FlipIf(!pis[i])
			}
			st := c.s.Solve(assumps...)
			if st != sat.Sat {
				t.Fatalf("assignment %b: %v on a consistent cone", x, st)
			}
			vals := g.Eval(pis)
			for n := 1; n < g.NumNodes(); n++ {
				if got, want := c.s.ValueLit(nodeLits[n]), vals[n]; got != want {
					t.Fatalf("assignment %b node %d: CNF solves to %v, evaluator says %v", x, n, got, want)
				}
			}
		}
	})
}
