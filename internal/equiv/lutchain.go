package equiv

import (
	"fmt"
	"math/bits"

	"c2nn/internal/lutmap"
	"c2nn/internal/nn"
	"c2nn/internal/poly"
	"c2nn/internal/tensor"
)

// ChainKind classifies one per-LUT chain violation; lint.go maps each
// kind to an EQ rule.
type ChainKind string

// Chain violation kinds.
const (
	// ChainPoly: Algorithm 1's polynomial does not reproduce the truth
	// table (zeta transform mismatch or non-Boolean value).
	ChainPoly ChainKind = "poly"
	// ChainTrace: the recorded provenance disagrees with the polynomial
	// (masks, coefficients, constant, unit bookkeeping).
	ChainTrace ChainKind = "trace"
	// ChainValue: the value form realised in the network weights does
	// not reproduce the truth table.
	ChainValue ChainKind = "value"
	// ChainNeuron: a term neuron's actual weight row or bias differs
	// from the substituted fan-in forms (Fig. 5 weight product).
	ChainNeuron ChainKind = "neuron"
	// ChainOutput: an output-layer row differs from the value form of
	// its combinational output.
	ChainOutput ChainKind = "output"
)

// ChainIssue is one violation found by the per-LUT proof chain.
type ChainIssue struct {
	Kind ChainKind `json:"kind"`
	LUT  int       `json:"lut"`  // -1 for output-layer issues
	Term int       `json:"term"` // -1 when not term-specific
	Msg  string    `json:"msg"`
}

func (i ChainIssue) String() string {
	if i.LUT < 0 {
		return fmt.Sprintf("%s: %s", i.Kind, i.Msg)
	}
	if i.Term < 0 {
		return fmt.Sprintf("%s: lut %d: %s", i.Kind, i.LUT, i.Msg)
	}
	return fmt.Sprintf("%s: lut %d term %d: %s", i.Kind, i.LUT, i.Term, i.Msg)
}

// ChainReport summarises the exhaustive LUT→polynomial→threshold-block
// certificate: every truth-table row of every LUT checked against the
// polynomial and against the value form the network weights realise,
// every term neuron's row and bias checked against the substituted
// fan-in forms, and every output row checked against its value form.
type ChainReport struct {
	LUTs        int          `json:"luts"`
	TermNeurons int          `json:"term_neurons"`
	RowsChecked int64        `json:"rows_checked"` // truth-table rows proven
	Issues      []ChainIssue `json:"issues,omitempty"`
}

// OK reports whether the whole chain held.
func (r *ChainReport) OK() bool { return len(r.Issues) == 0 }

// CheckLUTChain proves, LUT by LUT, that the mapped truth tables, their
// multi-linear polynomials and the threshold blocks built into the
// network model all realise the same function. Tables have at most 2^L
// rows, so every proof here is exhaustive — no sampling, no SAT.
func CheckLUTChain(g *lutmap.Graph, model *nn.Model) *ChainReport {
	rep := &ChainReport{LUTs: len(g.LUTs)}
	tr := model.Trace
	if tr == nil {
		rep.Issues = append(rep.Issues, ChainIssue{Kind: ChainTrace, LUT: -1, Term: -1,
			Msg: "model carries no LUT provenance trace"})
		return rep
	}
	if len(tr.LUTs) != len(g.LUTs) {
		rep.Issues = append(rep.Issues, ChainIssue{Kind: ChainTrace, LUT: -1, Term: -1,
			Msg: fmt.Sprintf("trace covers %d LUTs, graph has %d", len(tr.LUTs), len(g.LUTs))})
		return rep
	}
	for u := range g.LUTs {
		checkOneLUT(g, model, u, rep)
	}
	checkOutputLayer(g, model, rep)
	return rep
}

func checkOneLUT(g *lutmap.Graph, model *nn.Model, u int, rep *ChainReport) {
	issue := func(kind ChainKind, term int, format string, args ...interface{}) {
		rep.Issues = append(rep.Issues, ChainIssue{Kind: kind, LUT: u, Term: term,
			Msg: fmt.Sprintf(format, args...)})
	}
	l := &g.LUTs[u]
	lt := &model.Trace.LUTs[u]
	k := l.Table.NumVars
	p := poly.FromTable(l.Table)
	terms := p.NonConstTerms()
	rep.TermNeurons += len(terms)

	// EQ004 — table == polynomial. The zeta (subset-sum) transform of
	// the coefficient vector must reproduce the table with every value
	// in {0,1}: O(k·2^k) instead of 2^k full evaluations.
	dense := make([]int64, 1<<uint(k))
	for _, t := range p.Terms {
		dense[t.Mask] = int64(t.Coeff)
	}
	zeta(dense, k)
	rep.RowsChecked += int64(len(dense))
	for x := range dense {
		want := int64(0)
		if l.Table.Bit(x) {
			want = 1
		}
		if dense[x] != want {
			issue(ChainPoly, -1, "polynomial evaluates to %d at assignment %#x, table says %d", dense[x], x, want)
			break
		}
	}

	// EQ007 — provenance: the trace must record exactly the
	// polynomial's term structure and consistent unit bookkeeping.
	if len(lt.TermUnits) != len(terms) || len(lt.TermMasks) != len(terms) {
		issue(ChainTrace, -1, "trace records %d/%d term units/masks for %d polynomial terms",
			len(lt.TermUnits), len(lt.TermMasks), len(terms))
		return
	}
	for ti, t := range terms {
		if lt.TermMasks[ti] != t.Mask {
			issue(ChainTrace, ti, "trace mask %#x, polynomial mask %#x", lt.TermMasks[ti], t.Mask)
			return
		}
	}
	if model.Merged {
		if lt.Cst != p.ConstTerm() {
			issue(ChainTrace, -1, "trace constant %d, polynomial constant %d", lt.Cst, p.ConstTerm())
		}
		if len(lt.VUnits) != len(terms) || len(lt.VCoefs) != len(terms) {
			issue(ChainTrace, -1, "merged value form spans %d units for %d terms", len(lt.VUnits), len(terms))
			return
		}
		for ti, t := range terms {
			if lt.VUnits[ti] != lt.TermUnits[ti] || lt.VCoefs[ti] != t.Coeff {
				issue(ChainTrace, ti, "merged value form (unit %d coef %d) != (term unit %d coef %d)",
					lt.VUnits[ti], lt.VCoefs[ti], lt.TermUnits[ti], t.Coeff)
				return
			}
		}
	} else {
		if lt.Cst != 0 || len(lt.VUnits) != 1 || len(lt.VCoefs) != 1 || lt.VCoefs[0] != 1 {
			issue(ChainTrace, -1, "unmerged value form is not a unit pointer at a signal neuron")
			return
		}
	}

	// EQ005 — the value form realised in the network equals the table.
	// The realised coefficients are read back from the model (weight
	// rows for unmerged signals, the trace the engine executes for
	// merged), then zeta-transformed against the table — an independent
	// data path from the EQ004 check above.
	cst, coefs, ok := realizedValueForm(model, u, terms)
	if !ok {
		issue(ChainValue, -1, "cannot read the realised value form back from the network")
		return
	}
	vdense := make([]int64, 1<<uint(k))
	vdense[0] = cst
	for ti, t := range terms {
		vdense[t.Mask] += coefs[ti]
	}
	zeta(vdense, k)
	rep.RowsChecked += int64(len(vdense))
	for x := range vdense {
		want := int64(0)
		if l.Table.Bit(x) {
			want = 1
		}
		if vdense[x] != want {
			issue(ChainValue, -1, "realised value form gives %d at assignment %#x, table says %d", vdense[x], x, want)
			break
		}
	}

	// EQ005 — term neurons: each row of the threshold layer must be the
	// exact substitution of its fan-in value forms (unit pin weights in
	// the unmerged network, the Fig. 5 weight product in the merged
	// one), and the bias must put the firing threshold at "all pins
	// true": sum − bias = 1 when every pin of the monomial is 1 and
	// ≤ 0 when any pin is 0.
	ly := layerOf(model, lt)
	if ly < 0 {
		issue(ChainNeuron, -1, "level %d maps to no network layer", lt.Level)
		return
	}
	layer := &model.Net.Layers[ly]
	seg := model.Net.SegStart[ly]
	for ti, t := range terms {
		row := int(lt.TermUnits[ti] - seg)
		if row < 0 || row >= layer.W.Rows {
			issue(ChainNeuron, ti, "term unit %d outside layer %d rows", lt.TermUnits[ti], ly)
			continue
		}
		want := map[int32]int64{}
		size := int64(bits.OnesCount32(t.Mask))
		constSum := int64(0)
		for v := 0; v < k; v++ {
			if t.Mask>>uint(v)&1 == 0 {
				continue
			}
			ref := l.Ins[v]
			if ref.IsPI() {
				want[nn.PIUnit(ref.PI())]++
				continue
			}
			fl := &model.Trace.LUTs[ref.LUT()]
			constSum += int64(fl.Cst)
			for fk, unit := range fl.VUnits {
				want[unit] += int64(fl.VCoefs[fk])
				if want[unit] == 0 {
					delete(want, unit)
				}
			}
		}
		if diff := rowDiff(layer.W, row, want); diff != "" {
			issue(ChainNeuron, ti, "weight row mismatch: %s", diff)
			continue
		}
		wantBias := size - 1 - constSum
		if float64(layer.Bias[row]) != float64(wantBias) {
			issue(ChainNeuron, ti, "bias %v, want %d", layer.Bias[row], wantBias)
			continue
		}
		// Firing margins of Θ(Σ − bias): all pins true gives pin-sum
		// size (margin 1 > 0, fires); the best non-firing case gives
		// size−1 (margin 0, stays off). Constant offsets from fan-in
		// forms cancel against the bias.
		if fire := size - (wantBias + constSum); fire != 1 {
			issue(ChainNeuron, ti, "all-pins-true margin %d, want 1", fire)
		}
		if noFire := (size - 1) - (wantBias + constSum); noFire != 0 {
			issue(ChainNeuron, ti, "one-pin-false margin %d, want 0", noFire)
		}
	}
}

// realizedValueForm reads back how the network actually represents the
// LUT's output value. Merged models execute the trace's VUnits/VCoefs
// directly (already cross-checked against the polynomial); unmerged
// models materialise the signal in a linear layer, so the coefficients
// are read from that layer's actual weight row.
func realizedValueForm(model *nn.Model, u int, terms []poly.Term) (cst int64, coefs []int64, ok bool) {
	lt := &model.Trace.LUTs[u]
	if model.Merged {
		coefs = make([]int64, len(lt.VCoefs))
		for i, c := range lt.VCoefs {
			coefs[i] = int64(c)
		}
		return int64(lt.Cst), coefs, true
	}
	ly := layerOf(model, lt)
	if ly < 0 || ly+1 >= len(model.Net.Layers) {
		return 0, nil, false
	}
	lin := &model.Net.Layers[ly+1]
	row := int(lt.VUnits[0] - model.Net.SegStart[ly+1])
	if row < 0 || row >= lin.W.Rows {
		return 0, nil, false
	}
	byUnit := make(map[int32]int64)
	for p := lin.W.RowPtr[row]; p < lin.W.RowPtr[row+1]; p++ {
		byUnit[lin.W.Col[p]] += int64(lin.W.Val[p])
	}
	cst = byUnit[nn.ConstUnit]
	delete(byUnit, nn.ConstUnit)
	coefs = make([]int64, len(lt.TermUnits))
	for i, unit := range lt.TermUnits {
		coefs[i] = byUnit[unit]
		delete(byUnit, unit)
	}
	return cst, coefs, len(byUnit) == 0
}

// checkOutputLayer verifies every row of the final linear layer against
// the value form of its combinational output.
func checkOutputLayer(g *lutmap.Graph, model *nn.Model, rep *ChainReport) {
	last := len(model.Net.Layers) - 1
	layer := &model.Net.Layers[last]
	if layer.Threshold || layer.W.Rows != len(g.Outputs) {
		rep.Issues = append(rep.Issues, ChainIssue{Kind: ChainOutput, LUT: -1, Term: -1,
			Msg: fmt.Sprintf("final layer has %d rows (threshold=%v) for %d outputs",
				layer.W.Rows, layer.Threshold, len(g.Outputs))})
		return
	}
	for j, ref := range g.Outputs {
		want := map[int32]int64{}
		if ref.IsPI() {
			want[nn.PIUnit(ref.PI())] = 1
		} else {
			lt := &model.Trace.LUTs[ref.LUT()]
			if lt.Cst != 0 {
				want[nn.ConstUnit] = int64(lt.Cst)
			}
			for k, unit := range lt.VUnits {
				want[unit] += int64(lt.VCoefs[k])
				if want[unit] == 0 {
					delete(want, unit)
				}
			}
		}
		if diff := rowDiff(layer.W, j, want); diff != "" {
			rep.Issues = append(rep.Issues, ChainIssue{Kind: ChainOutput, LUT: -1, Term: -1,
				Msg: fmt.Sprintf("output %d row mismatch: %s", j, diff)})
		}
	}
}

// layerOf resolves a trace entry's threshold layer index, -1 if absent.
func layerOf(model *nn.Model, lt *nn.LUTTrace) int {
	lol := model.Trace.LayerOfLevel
	if int(lt.Level) >= len(lol) {
		return -1
	}
	return int(lol[lt.Level])
}

// rowDiff compares an actual CSR row with expected integer
// coefficients, returning a description of the first difference or "".
func rowDiff(m *tensor.CSR, row int, want map[int32]int64) string {
	seen := 0
	for p := m.RowPtr[row]; p < m.RowPtr[row+1]; p++ {
		col, val := m.Col[p], m.Val[p]
		w, ok := want[col]
		if !ok {
			return fmt.Sprintf("unexpected weight %v at unit %d", val, col)
		}
		if float64(val) != float64(w) {
			return fmt.Sprintf("unit %d has weight %v, want %d", col, val, w)
		}
		seen++
	}
	if seen != len(want) {
		return fmt.Sprintf("row has %d entries, want %d", seen, len(want))
	}
	return ""
}

// zeta computes the in-place subset-sum transform over k variables:
// d[x] becomes Σ_{S ⊆ x} d[S] — evaluating a multi-linear polynomial
// with 0/1 inputs at every assignment simultaneously in O(k·2^k).
func zeta(d []int64, k int) {
	for v := 0; v < k; v++ {
		bit := 1 << uint(v)
		for x := range d {
			if x&bit != 0 {
				d[x] += d[x&^bit]
			}
		}
	}
}
