package equiv

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"c2nn/internal/obs"
	"c2nn/internal/sat"
)

// Status is the verdict of one miter proof.
type Status string

// Miter verdicts.
const (
	// Equivalent: every output miter is UNSAT — the two IRs compute the
	// same function of the shared combinational inputs.
	Equivalent Status = "equivalent"
	// NotEquivalent: some output miter is SAT; Cex holds the replayable
	// distinguishing input.
	NotEquivalent Status = "not_equivalent"
	// Inconclusive: the conflict budget ran out before a verdict.
	Inconclusive Status = "inconclusive"
)

// SweepStats counts the work of the combined sweep shared by every
// stage miter of one proof: all requested IR sides are Tseitin-encoded
// into a single solver over shared primary-input variables, so internal
// equivalences are proven once and reused transitively by each stage's
// output miters.
type SweepStats struct {
	Sides      int     `json:"sides"`
	Vars       int     `json:"vars"`
	Clauses    int     `json:"clauses"`
	Gates      int     `json:"tseitin_gates"`
	Rounds     int     `json:"rounds"`
	Patterns   int     `json:"patterns"` // simulation lanes used
	Candidates int     `json:"candidates"`
	Merged     int     `json:"merged"`
	Disproven  int     `json:"disproven"`
	Skipped    int     `json:"skipped"` // candidate pairs dropped on budget
	Solves     int64   `json:"solves"`
	Conflicts  int64   `json:"conflicts"`
	CNFMillis  float64 `json:"cnf_ms"`
	SweepMs    float64 `json:"sweep_ms"`
}

// MiterResult is the outcome of one stage miter: the per-output final
// proofs of that stage pair, on top of the shared sweep.
type MiterResult struct {
	Stage         StagePair       `json:"stage"`
	Status        Status          `json:"status"`
	Outputs       int             `json:"outputs"`
	FailingOutput int             `json:"failing_output,omitempty"`
	Cex           *Counterexample `json:"cex,omitempty"`
	Solves        int64           `json:"solves"`
	Conflicts     int64           `json:"conflicts"`
	SolveMillis   float64         `json:"solve_ms"`
}

// miterConfig bounds one sweep; zero values are filled by Options.
type miterConfig struct {
	patternWords   int
	maxRounds      int
	pairBudget     int64
	finalBudget    int64
	seed           int64
	maxCexPerRound int
}

// pairKey identifies an (a, b) candidate pair across rounds; nodes are
// numbered side<<32|index.
type pairKey [2]uint64

// proveMiters runs one combined equivalence proof over every IR side
// the requested stages touch. All sides are encoded into a single CNF
// over shared primary-input variables, one simulation-guided sweep
// proves internal equivalences bottom-up across sides (candidate pairs
// always span two different sides, so every merge advances a cross-IR
// proof and chains transitively), and then each stage discharges its
// per-output miters — usually by unit propagation through the merged
// classes. SAT models are validated by replaying them through both
// sides' simulators before being reported as counterexamples.
func proveMiters(stages []StagePair, sides []*sideIR, pairIdx map[StagePair][2]int, numPIs int, cfg miterConfig, tr *obs.Trace) (*SweepStats, []*MiterResult, error) {
	stats := &SweepStats{Sides: len(sides)}

	cnfStart := time.Now()
	csp := tr.Begin("equiv.cnf")
	c := newCNF()
	piLits := make([]sat.Lit, numPIs)
	for i := range piLits {
		piLits[i] = c.newLit()
	}
	nodeLits := make([][]sat.Lit, len(sides))
	outLits := make([][]sat.Lit, len(sides))
	for i, s := range sides {
		var err error
		nodeLits[i], outLits[i], err = s.encode(c, piLits)
		if err != nil {
			csp.End()
			return nil, nil, fmt.Errorf("equiv: encoding %s: %w", s.name, err)
		}
	}
	for _, stage := range stages {
		p := pairIdx[stage]
		if la, lb := len(outLits[p[0]]), len(outLits[p[1]]); la != lb {
			csp.End()
			return nil, nil, fmt.Errorf("equiv: %s has %d outputs, %s has %d",
				sides[p[0]].name, la, sides[p[1]].name, lb)
		}
	}
	st := c.s.Stats()
	stats.Vars, stats.Clauses, stats.Gates = st.Vars, st.Clauses, c.gates
	stats.CNFMillis = float64(time.Since(cnfStart).Microseconds()) / 1000
	csp.SetInt("vars", int64(st.Vars)).
		SetInt("clauses", int64(st.Clauses)).
		SetInt("gates", int64(c.gates)).End()

	// restrictCones limits the solver's decisions to the combined
	// structural cone of the given literals (a DFS over the Tseitin defs
	// recorded by the builder), with one refinement: a variable already
	// proven equal to a lower one (subst) becomes a cut point — the DFS
	// includes the variable itself but expands the representative's cone
	// instead of its own fanin. The set stays sound for SetDecisionVars:
	// once every set variable is assigned without conflict, each cut
	// point's value equals its representative's, which is computed
	// functionally by its fully-assigned cone, so the natural evaluation
	// of the whole circuit from the model's PI values is a genuine total
	// model agreeing on the miter. The payoff is that cones shrink as
	// the sweep merges nodes, so later (and deeper) proofs stay small.
	// Buffers are reused across calls; coneMark uses epoch stamps so it
	// is never cleared.
	subst := make(map[int32]int32)
	merge := func(a, b sat.Lit) {
		va, vb := int32(a.Var()), int32(b.Var())
		if va == vb {
			return
		}
		if va > vb {
			va, vb = vb, va
		}
		subst[vb] = va
	}
	coneMark := make([]int32, len(c.defN))
	coneEpoch := int32(0)
	var coneVars, coneStack []int32
	restrictCones := func(lits ...sat.Lit) {
		coneEpoch++
		coneVars, coneStack = coneVars[:0], coneStack[:0]
		push := func(v int32) {
			if coneMark[v] != coneEpoch {
				coneMark[v] = coneEpoch
				coneStack = append(coneStack, v)
			}
		}
		for _, l := range lits {
			push(int32(l.Var()))
		}
		for len(coneStack) > 0 {
			v := coneStack[len(coneStack)-1]
			coneStack = coneStack[:len(coneStack)-1]
			coneVars = append(coneVars, v)
			if lo, ok := subst[v]; ok {
				push(lo)
				continue
			}
			for k := uint8(0); k < c.defN[v]; k++ {
				push(int32(c.defs[v][k].Var()))
			}
		}
		c.s.SetDecisionVars(coneVars)
	}
	defer c.s.SetDecisionVars(nil)

	sweepStart := time.Now()
	ssp := tr.Begin("equiv.solve")
	rng := rand.New(rand.NewSource(cfg.seed))
	patterns := make([][]uint64, numPIs)
	for i := range patterns {
		w := make([]uint64, cfg.patternWords)
		for k := range w {
			w[k] = rng.Uint64()
		}
		patterns[i] = w
	}

	proven := make(map[pairKey]bool)
	refuted := make(map[pairKey]bool)
	// Pairs whose proof exhausted the per-pair budget once are not
	// retried in later rounds: their signatures did not split, so a
	// retry would usually burn the same budget again. The final output
	// miters re-examine anything that matters with the large budget.
	abandoned := make(map[pairKey]bool)
	pairLits := make(map[pairKey][2]sat.Lit)
	xorCache := make(map[pairKey]sat.Lit)

	// Sweep rounds: simulate every side, pair identical (or
	// complemented) signatures across sides, prove each candidate pair
	// with a conflict budget, and feed SAT models back as fresh
	// simulation patterns so disproven classes split before the next
	// round.
	sigs := make([][][]uint64, len(sides))
	for round := 0; ; round++ {
		stats.Rounds = round + 1
		stats.Patterns = 64 * len(patterns[0])
		for i, s := range sides {
			sigs[i], _ = s.sim(patterns)
		}

		type rep struct {
			lit  sat.Lit
			key  uint64
			side uint64
		}
		classes := make(map[string]rep)
		// Seed the constant class so always-false/always-true nodes get
		// proven against the shared constant literal.
		classes[zeroKey(len(patterns[0]))] = rep{lit: c.constant(false), key: ^uint64(0), side: ^uint64(0)}

		var cexes [][]bool
		try := func(side uint64, idx int, sig []uint64, lit sat.Lit) {
			phase := sig[0]&1 == 1
			canonLit := lit.FlipIf(phase)
			key := canonKey(sig, phase)
			r, ok := classes[key]
			if !ok {
				classes[key] = rep{lit: canonLit, key: side<<32 | uint64(idx), side: side}
				return
			}
			if r.lit == canonLit {
				return // alias of the representative
			}
			if r.side == side {
				// Intra-side duplicates don't advance the cross-IR
				// proof; skip the SAT call and keep the existing rep.
				return
			}
			pk := pairKey{r.key, side<<32 | uint64(idx)}
			if proven[pk] || refuted[pk] || abandoned[pk] {
				return
			}
			stats.Candidates++
			d, ok := xorCache[pk]
			if !ok {
				d = c.xorGate(r.lit, canonLit)
				xorCache[pk] = d
			}
			c.s.SetConflictBudget(cfg.pairBudget)
			restrictCones(r.lit, canonLit)
			switch c.s.Solve(d) {
			case sat.Unsat:
				c.s.AddClause(d.Flip())
				proven[pk] = true
				merge(r.lit, canonLit)
				stats.Merged++
			case sat.Sat:
				stats.Disproven++
				refuted[pk] = true
				if len(cexes) < cfg.maxCexPerRound {
					cexes = append(cexes, extractPIs(c.s, piLits))
				}
			default:
				abandoned[pk] = true
				pairLits[pk] = [2]sat.Lit{r.lit, canonLit}
				stats.Skipped++
			}
		}
		for i := range sides {
			for j, sig := range sigs[i] {
				try(uint64(i), j, sig, nodeLits[i][j])
			}
		}
		if len(cexes) == 0 || round+1 >= cfg.maxRounds {
			break
		}
		patterns = appendPatterns(patterns, cexes, rng)
	}

	// Hardening passes: pairs abandoned on budget are retried bottom-up
	// with escalating budgets while they are still node-local — far
	// cheaper than letting the unproven logic surface again inside a
	// deep output miter. Bottom-up order matters: each proven pair adds
	// an equality clause that short-circuits the cones above it.
	if len(abandoned) > 0 {
		type hardPair struct {
			pk   pairKey
			a, b sat.Lit
		}
		hards := make([]hardPair, 0, len(abandoned))
		for pk := range abandoned {
			l := pairLits[pk]
			hards = append(hards, hardPair{pk, l[0], l[1]})
		}
		sort.Slice(hards, func(i, j int) bool {
			hi, hj := maxVar(hards[i].a, hards[i].b), maxVar(hards[j].a, hards[j].b)
			if hi != hj {
				return hi < hj
			}
			return hards[i].pk[0]<<1^hards[i].pk[1] < hards[j].pk[0]<<1^hards[j].pk[1]
		})
		budget := cfg.pairBudget
		for pass := 0; pass < 2 && len(hards) > 0; pass++ {
			budget *= 10
			rest := hards[:0]
			for _, h := range hards {
				d := xorCache[h.pk]
				c.s.SetConflictBudget(budget)
				restrictCones(h.a, h.b)
				switch c.s.Solve(d) {
				case sat.Unsat:
					c.s.AddClause(d.Flip())
					merge(h.a, h.b)
					stats.Merged++
				case sat.Sat:
					stats.Disproven++
				default:
					rest = append(rest, h)
				}
			}
			hards = rest
		}
		stats.Skipped = len(hards)
	}
	sw := c.s.Stats()
	stats.Solves, stats.Conflicts = sw.Solves, sw.Conflicts
	stats.SweepMs = float64(time.Since(sweepStart).Microseconds()) / 1000
	ssp.SetInt("solves", sw.Solves).
		SetInt("conflicts", sw.Conflicts).
		SetInt("clauses", int64(sw.Clauses)).
		SetInt("merged", int64(stats.Merged)).End()

	// Final per-output miters, one pass per requested stage. The sweep
	// has usually merged each output pair already, making these
	// unit-propagation lookups.
	results := make([]*MiterResult, 0, len(stages))
	for _, stage := range stages {
		p := pairIdx[stage]
		a, b := sides[p[0]], sides[p[1]]
		oa, ob := outLits[p[0]], outLits[p[1]]
		res := &MiterResult{Stage: stage, Status: Equivalent, Outputs: len(oa)}
		results = append(results, res)

		stageStart := time.Now()
		before := c.s.Stats()
		msp := tr.Begin("equiv.miter")
		c.s.SetConflictBudget(cfg.finalBudget)
	outputs:
		for j := range oa {
			la, lb := oa[j], ob[j]
			if la == lb {
				continue
			}
			d := c.xorGate(la, lb)
			restrictCones(la, lb)
			switch c.s.Solve(d) {
			case sat.Unsat:
				c.s.AddClause(d.Flip())
			case sat.Sat:
				pis := extractPIs(c.s, piLits)
				cex, err := buildCex(stage, a, b, pis)
				if err != nil {
					msp.End()
					return nil, nil, err
				}
				res.Status = NotEquivalent
				res.FailingOutput = j
				res.Cex = cex
				break outputs
			default:
				res.Status = Inconclusive
				res.FailingOutput = j
				break outputs
			}
		}
		after := c.s.Stats()
		res.Solves = after.Solves - before.Solves
		res.Conflicts = after.Conflicts - before.Conflicts
		res.SolveMillis = float64(time.Since(stageStart).Microseconds()) / 1000
		msp.SetStr("stage", string(stage)).
			SetStr("status", string(res.Status)).
			SetInt("solves", res.Solves).
			SetInt("conflicts", res.Conflicts).End()
	}
	stats.Clauses = c.s.Stats().Clauses
	return stats, results, nil
}

func maxVar(a, b sat.Lit) int {
	if a.Var() > b.Var() {
		return a.Var()
	}
	return b.Var()
}

// canonKey serialises a signature with optional complement so a node
// and its inverse land in the same candidate class.
func canonKey(sig []uint64, flip bool) string {
	buf := make([]byte, 0, 8*len(sig))
	for _, w := range sig {
		if flip {
			w = ^w
		}
		for k := 0; k < 8; k++ {
			buf = append(buf, byte(w>>uint(8*k)))
		}
	}
	return string(buf)
}

func zeroKey(words int) string {
	return string(make([]byte, 8*words))
}

// extractPIs reads the primary-input assignment out of a SAT model.
func extractPIs(s *sat.Solver, piLits []sat.Lit) []bool {
	pis := make([]bool, len(piLits))
	for i, l := range piLits {
		pis[i] = s.ValueLit(l)
	}
	return pis
}

// appendPatterns packs counterexample assignments (one bit per cex)
// into extra stimulus words per primary input, filling unused lanes
// with fresh random bits.
func appendPatterns(patterns [][]uint64, cexes [][]bool, rng *rand.Rand) [][]uint64 {
	words := (len(cexes) + 63) / 64
	for i := range patterns {
		for wi := 0; wi < words; wi++ {
			var w uint64 = rng.Uint64()
			for k, cex := range cexes[wi*64 : min(len(cexes), wi*64+64)] {
				if cex[i] {
					w |= 1 << uint(k)
				} else {
					w &^= 1 << uint(k)
				}
			}
			patterns[i] = append(patterns[i], w)
		}
	}
	return patterns
}
