package equiv

import (
	"fmt"
	"time"

	"c2nn/internal/aig"
	"c2nn/internal/lutmap"
	"c2nn/internal/netlist"
	"c2nn/internal/nn"
	"c2nn/internal/obs"
)

// StagePair names one miter between two pipeline IRs.
type StagePair string

// The three stage miters. NetlistLUT is deliberately redundant with the
// other two — the transitive check catches a bug that two compensating
// encoder errors would hide.
const (
	StageNetlistAIG StagePair = "netlist-aig"
	StageAIGLUT     StagePair = "aig-lut"
	StageNetlistLUT StagePair = "netlist-lut"
)

// AllStages lists every stage miter in pipeline order.
func AllStages() []StagePair {
	return []StagePair{StageNetlistAIG, StageAIGLUT, StageNetlistLUT}
}

// Options configures a proof. The zero value proves all three stage
// miters plus the per-LUT chain with the default budgets.
type Options struct {
	// Stages selects which miters to build; nil means all three.
	Stages []StagePair
	// SkipChain disables the per-LUT table→polynomial→threshold proof.
	SkipChain bool

	// PatternWords sets the initial random-simulation width in 64-lane
	// words (default 16, i.e. 1024 patterns).
	PatternWords int
	// MaxRounds bounds the sweep's refine iterations (default 8).
	MaxRounds int
	// PairBudget is the conflict budget per candidate-pair SAT call
	// (default 300); pairs exceeding it are deferred to the
	// escalating-budget hardening pass, not failed.
	PairBudget int64
	// FinalBudget is the conflict budget per output miter (default
	// 200000); exceeding it makes the verdict Inconclusive.
	FinalBudget int64
	// Seed drives the random simulation patterns (default 1).
	Seed int64

	// Trace, when non-nil, records equiv.cnf and equiv.solve spans per
	// miter.
	Trace *obs.Trace
}

func (o *Options) fill() {
	if o.PatternWords <= 0 {
		o.PatternWords = 16
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 8
	}
	if o.PairBudget <= 0 {
		o.PairBudget = 300
	}
	if o.FinalBudget <= 0 {
		o.FinalBudget = 200000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Stages == nil {
		o.Stages = AllStages()
	}
}

// Result is the complete equivalence certificate of one compile: one
// miter per requested stage pair plus the per-LUT proof chain.
type Result struct {
	Circuit     string         `json:"circuit"`
	L           int            `json:"l"`
	Sweep       *SweepStats    `json:"sweep"`
	Miters      []*MiterResult `json:"miters"`
	Chain       *ChainReport   `json:"chain,omitempty"`
	Equivalent  bool           `json:"equivalent"`
	TotalMillis float64        `json:"total_ms"`
}

// FirstCex returns the first counterexample across the miters, nil when
// every miter is UNSAT.
func (r *Result) FirstCex() *Counterexample {
	for _, m := range r.Miters {
		if m.Cex != nil {
			return m.Cex
		}
	}
	return nil
}

// Prove runs the full equivalence check for a compiled pipeline: the
// caller supplies every IR stage of one compile (as produced by
// aig.FromNetlist, lutmap.MapNetlist and nn.Build on the same netlist)
// and receives the certificate. model may be nil when Options.SkipChain
// is set.
func Prove(nl *netlist.Netlist, ag *aig.AIG, aigOuts []aig.Lit, m *lutmap.Mapping, model *nn.Model, opts Options) (*Result, error) {
	opts.fill()
	start := time.Now()
	if errs := VerifyPairing(nl, ag, aigOuts, m); len(errs) > 0 {
		return nil, fmt.Errorf("equiv: stage pairing broken: %s", errs[0])
	}
	res := &Result{Circuit: nl.Name, L: m.Graph.K, Equivalent: true}

	nlSide, err := netlistSide(nl)
	if err != nil {
		return nil, err
	}
	agSide := aigSide(ag, aigOuts)
	lSide := lutSide(m.Graph)
	all := []*sideIR{nlSide, agSide, lSide}
	pairs := map[StagePair][2]int{
		StageNetlistAIG: {0, 1},
		StageAIGLUT:     {1, 2},
		StageNetlistLUT: {0, 2},
	}

	// Encode only the sides the requested stages touch, renumbering the
	// pair indices onto the compacted side list.
	used := make([]int, 3)
	for i := range used {
		used[i] = -1
	}
	var sides []*sideIR
	pairIdx := make(map[StagePair][2]int, len(opts.Stages))
	for _, stage := range opts.Stages {
		p, ok := pairs[stage]
		if !ok {
			return nil, fmt.Errorf("equiv: unknown stage pair %q", stage)
		}
		for k, si := range p {
			if used[si] < 0 {
				used[si] = len(sides)
				sides = append(sides, all[si])
			}
			p[k] = used[si]
		}
		pairIdx[stage] = p
	}

	numPIs := len(m.PINets)
	cfg := miterConfig{
		patternWords:   opts.PatternWords,
		maxRounds:      opts.MaxRounds,
		pairBudget:     opts.PairBudget,
		finalBudget:    opts.FinalBudget,
		seed:           opts.Seed,
		maxCexPerRound: 256,
	}
	sweep, miters, err := proveMiters(opts.Stages, sides, pairIdx, numPIs, cfg, opts.Trace)
	if err != nil {
		return nil, err
	}
	res.Sweep = sweep
	res.Miters = miters
	for _, mr := range miters {
		if mr.Status != Equivalent {
			res.Equivalent = false
		}
	}

	if !opts.SkipChain {
		if model == nil {
			return nil, fmt.Errorf("equiv: the per-LUT chain needs a compiled model (or set SkipChain)")
		}
		sp := opts.Trace.Begin("equiv.chain")
		res.Chain = CheckLUTChain(m.Graph, model)
		sp.SetInt("luts", int64(res.Chain.LUTs)).
			SetInt("rows", res.Chain.RowsChecked).
			SetInt("issues", int64(len(res.Chain.Issues))).End()
		if !res.Chain.OK() {
			res.Equivalent = false
		}
	}
	res.TotalMillis = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}

// VerifyPairing checks the positional invariants that let the miters
// share primary-input variables across IRs: the AIG and the mapping
// must list the netlist's combinational inputs and outputs in netlist
// order (rule EQ006's substance). Returns a description per violation.
func VerifyPairing(nl *netlist.Netlist, ag *aig.AIG, aigOuts []aig.Lit, m *lutmap.Mapping) []string {
	var errs []string
	combIns := nl.CombInputs()
	pis := make([]netlist.NetID, 0, len(combIns))
	for _, id := range combIns {
		if id != netlist.ConstZero && id != netlist.ConstOne {
			pis = append(pis, id)
		}
	}
	combOuts := nl.CombOutputs()

	if ag.NumPIs() != len(pis) {
		errs = append(errs, fmt.Sprintf("AIG has %d PIs, netlist has %d combinational inputs", ag.NumPIs(), len(pis)))
	}
	if len(aigOuts) != len(combOuts) {
		errs = append(errs, fmt.Sprintf("AIG miter has %d outputs, netlist has %d combinational outputs", len(aigOuts), len(combOuts)))
	}
	if m.Graph.NumPIs != len(pis) {
		errs = append(errs, fmt.Sprintf("LUT graph has %d PIs, netlist has %d combinational inputs", m.Graph.NumPIs, len(pis)))
	}
	if len(m.PINets) != len(pis) {
		errs = append(errs, fmt.Sprintf("mapping records %d PI nets, netlist has %d combinational inputs", len(m.PINets), len(pis)))
	} else {
		for i, id := range pis {
			if m.PINets[i] != id {
				errs = append(errs, fmt.Sprintf("mapping PI %d is net %s, netlist combinational input %d is %s",
					i, nl.NameOf(m.PINets[i]), i, nl.NameOf(id)))
				break
			}
		}
	}
	if len(m.OutputNets) != len(combOuts) {
		errs = append(errs, fmt.Sprintf("mapping records %d output nets, netlist has %d combinational outputs", len(m.OutputNets), len(combOuts)))
	} else {
		for j, id := range combOuts {
			if m.OutputNets[j] != id {
				errs = append(errs, fmt.Sprintf("mapping output %d is net %s, netlist combinational output %d is %s",
					j, nl.NameOf(m.OutputNets[j]), j, nl.NameOf(id)))
				break
			}
		}
	}
	if len(m.Graph.Outputs) != len(combOuts) {
		errs = append(errs, fmt.Sprintf("LUT graph has %d outputs, netlist has %d combinational outputs", len(m.Graph.Outputs), len(combOuts)))
	}
	return errs
}

// ProveNetlist compiles the netlist through every stage itself and
// proves the result — the convenience entry behind the facade and CLI.
func ProveNetlist(nl *netlist.Netlist, l int, flowMap bool, coalesceWide int, merge bool, opts Options) (*Result, error) {
	if l <= 0 {
		l = 7
	}
	ag, lits, err := aig.FromNetlist(nl)
	if err != nil {
		return nil, fmt.Errorf("equiv: lowering to AIG: %w", err)
	}
	combOuts := nl.CombOutputs()
	aigOuts := make([]aig.Lit, 0, len(combOuts))
	for _, net := range combOuts {
		aigOuts = append(aigOuts, lits[net])
	}
	alg := lutmap.PriorityCuts
	if flowMap {
		alg = lutmap.FlowMap
	}
	m, err := lutmap.MapNetlist(nl, lutmap.Options{K: l, Algorithm: alg})
	if err != nil {
		return nil, fmt.Errorf("equiv: mapping: %w", err)
	}
	if coalesceWide > 0 {
		cg, err := lutmap.Coalesce(m.Graph, coalesceWide)
		if err != nil {
			return nil, fmt.Errorf("equiv: coalescing: %w", err)
		}
		m.Graph = cg
	}
	var model *nn.Model
	if !opts.SkipChain {
		model, err = nn.Build(nl, m, nn.BuildOptions{Merge: merge, L: l})
		if err != nil {
			return nil, fmt.Errorf("equiv: building network: %w", err)
		}
	}
	return Prove(nl, ag, aigOuts, m, model, opts)
}
