package equiv

import (
	"testing"

	"c2nn/internal/aig"
	"c2nn/internal/circuits"
	"c2nn/internal/lutmap"
	"c2nn/internal/netlist"
	"c2nn/internal/raceflag"
)

// compile lowers a circuit through every stage the prover consumes.
func compile(t *testing.T, name string, l int) (*netlist.Netlist, *aig.AIG, []aig.Lit, *lutmap.Mapping) {
	t.Helper()
	c, err := circuits.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := c.Elaborate()
	if err != nil {
		t.Fatal(err)
	}
	ag, lits, err := aig.FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	var aigOuts []aig.Lit
	for _, net := range nl.CombOutputs() {
		aigOuts = append(aigOuts, lits[net])
	}
	m, err := lutmap.MapNetlist(nl, lutmap.Options{K: l, Algorithm: lutmap.PriorityCuts})
	if err != nil {
		t.Fatal(err)
	}
	return nl, ag, aigOuts, m
}

// TestProveUART is the fast end-to-end check: every stage miter UNSAT,
// every per-LUT chain row verified, no pair abandoned by the sweep.
func TestProveUART(t *testing.T) {
	c, err := circuits.ByName("UART")
	if err != nil {
		t.Fatal(err)
	}
	nl, err := c.Elaborate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ProveNetlist(nl, 4, false, 0, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("UART L=4 not proven equivalent:\n%+v", res)
	}
	if len(res.Miters) != 3 {
		t.Fatalf("want 3 stage miters, got %d", len(res.Miters))
	}
	for _, m := range res.Miters {
		if m.Status != Equivalent {
			t.Errorf("%s: %s", m.Stage, m.Status)
		}
		if m.Cex != nil {
			t.Errorf("%s: UNSAT miter carries a counterexample", m.Stage)
		}
	}
	s := res.Sweep
	if s.Skipped != 0 {
		t.Errorf("sweep abandoned %d pairs, want 0", s.Skipped)
	}
	if s.Merged == 0 || s.Vars == 0 || s.Clauses == 0 {
		t.Errorf("implausible sweep stats: %+v", s)
	}
	if res.Chain == nil || !res.Chain.OK() {
		t.Fatalf("chain proof failed: %+v", res.Chain)
	}
	if res.Chain.LUTs == 0 || res.Chain.RowsChecked == 0 {
		t.Errorf("chain checked nothing: %+v", res.Chain)
	}
	if ds := res.Lint(); len(ds) != 0 {
		t.Errorf("clean certificate produced diagnostics: %v", ds)
	}
}

// TestProveMatrix proves the full benchmark suite at every paper LUT
// size — the static twin of the dynamic simengine.Verify sweep. The
// merged network build is minutes-scale at L=11, so the chain runs on
// the unmerged model there; the miters are unaffected (they read the
// LUT graph, not the network).
func TestProveMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-scale SAT matrix")
	}
	if raceflag.Enabled {
		t.Skip("SAT matrix is an order of magnitude slower under -race; the CI equivalence job covers it")
	}
	for _, c := range circuits.All() {
		nl, err := c.Elaborate()
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range []int{4, 7, 11} {
			res, err := ProveNetlist(nl, l, false, 0, l <= 7, Options{})
			if err != nil {
				t.Fatalf("%s L=%d: %v", c.Name, l, err)
			}
			t.Logf("%-16s L=%2d total=%8.1fms sweep=%8.1fms rounds=%d merged=%d skipped=%d",
				c.Name, l, res.TotalMillis, res.Sweep.SweepMs, res.Sweep.Rounds, res.Sweep.Merged, res.Sweep.Skipped)
			if !res.Equivalent {
				for _, m := range res.Miters {
					t.Logf("  %s: %s", m.Stage, m.Status)
				}
				t.Fatalf("%s L=%d not equivalent", c.Name, l)
			}
		}
	}
}

// TestSingleStage checks stage selection: only the requested miter is
// built and the unused side is never encoded.
func TestSingleStage(t *testing.T) {
	nl, ag, aigOuts, m := compile(t, "SPI", 4)
	res, err := Prove(nl, ag, aigOuts, m, nil, Options{
		Stages:    []StagePair{StageNetlistAIG},
		SkipChain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Miters) != 1 || res.Miters[0].Stage != StageNetlistAIG {
		t.Fatalf("want exactly the netlist-aig miter, got %+v", res.Miters)
	}
	if !res.Equivalent {
		t.Fatal("SPI netlist-aig miter not proven")
	}
	if res.Sweep.Sides != 2 {
		t.Errorf("one stage pair should encode 2 sides, got %d", res.Sweep.Sides)
	}
	if res.Chain != nil {
		t.Error("SkipChain still produced a chain report")
	}
}

// TestPairingViolation corrupts the mapping's PI order and checks both
// the hard error from Prove and the EQ006 diagnostics from LintPairing.
func TestPairingViolation(t *testing.T) {
	nl, ag, aigOuts, m := compile(t, "UART", 4)
	if len(m.PINets) < 2 {
		t.Fatal("need at least two PIs")
	}
	bad := *m
	bad.PINets = append([]netlist.NetID(nil), m.PINets...)
	bad.PINets[0], bad.PINets[1] = bad.PINets[1], bad.PINets[0]

	if _, err := Prove(nl, ag, aigOuts, &bad, nil, Options{SkipChain: true}); err == nil {
		t.Fatal("Prove accepted a mapping with swapped PI nets")
	}
	ds := LintPairing(nl, ag, aigOuts, &bad)
	if len(ds) == 0 {
		t.Fatal("LintPairing missed the swapped PI nets")
	}
	for _, d := range ds {
		if d.Rule != "EQ006" {
			t.Errorf("want EQ006, got %s", d.Rule)
		}
	}
	if ds := LintPairing(nl, ag, aigOuts, m); len(ds) != 0 {
		t.Errorf("clean mapping produced pairing diagnostics: %v", ds)
	}
}

// TestResultLint checks the certificate → diagnostics mapping rule by
// rule on a synthetic Result.
func TestResultLint(t *testing.T) {
	res := &Result{
		Circuit: "t", L: 4,
		Miters: []*MiterResult{
			{Stage: StageNetlistAIG, Status: NotEquivalent, FailingOutput: 3,
				Cex: &Counterexample{Assignment: "0x5", Diverging: []int{3}}},
			{Stage: StageAIGLUT, Status: Inconclusive, Conflicts: 42},
			{Stage: StageNetlistLUT, Status: Equivalent},
		},
		Chain: &ChainReport{Issues: []ChainIssue{
			{Kind: ChainPoly, LUT: 7, Term: -1, Msg: "row 2 differs"},
			{Kind: ChainValue, LUT: 8, Term: 1, Msg: "value 2 for row 5"},
			{Kind: ChainTrace, LUT: -1, Term: -1, Msg: "trace length"},
		}},
	}
	ds := res.Lint()
	want := []string{"EQ001", "EQ008", "EQ004", "EQ005", "EQ007"}
	if len(ds) != len(want) {
		t.Fatalf("want %d diagnostics, got %d: %v", len(want), len(ds), ds)
	}
	got := map[string]bool{}
	for _, d := range ds {
		got[d.Rule] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("missing %s in %v", id, ds)
		}
	}
}
