package equiv

import (
	"fmt"
	"strings"

	"c2nn/internal/netlist"
	"c2nn/internal/testbench"
)

// Counterexample is a satisfying assignment of a stage miter: a single
// combinational-input vector (primary input bits then flip-flop states,
// constants excluded) on which the two sides disagree. Script renders
// it as a replayable .tb testbench.
type Counterexample struct {
	// PIs is the assignment in CombInputs order minus the constants.
	PIs []bool `json:"-"`
	// Assignment is PIs rendered as a hex literal, LSB-first.
	Assignment string `json:"assignment"`
	// Diverging lists the CombOutputs indices where the sides disagree.
	Diverging []int `json:"diverging_outputs"`
	// OutA and OutB are the full output vectors of each side.
	OutA []bool `json:"-"`
	OutB []bool `json:"-"`
}

// buildCex replays a SAT model through both sides' simulators and
// records which outputs diverge. A model that does not diverge means
// the encoding and the simulator disagree — an internal error, never a
// user-visible verdict.
func buildCex(stage StagePair, a, b *sideIR, pis []bool) (*Counterexample, error) {
	patterns := singlePattern(pis)
	_, outsA := a.sim(patterns)
	_, outsB := b.sim(patterns)
	cx := &Counterexample{
		PIs:        pis,
		Assignment: testbench.FormatBits(pis),
		OutA:       make([]bool, len(outsA)),
		OutB:       make([]bool, len(outsB)),
	}
	for j := range outsA {
		va := outsA[j][0]&1 == 1
		vb := outsB[j][0]&1 == 1
		cx.OutA[j], cx.OutB[j] = va, vb
		if va != vb {
			cx.Diverging = append(cx.Diverging, j)
		}
	}
	if len(cx.Diverging) == 0 {
		return nil, fmt.Errorf("equiv: internal error: SAT model of the %s miter does not diverge under simulation", stage)
	}
	return cx, nil
}

// singlePattern spreads one assignment over all 64 lanes of a one-word
// stimulus so lane 0 (and every other lane) carries the cex.
func singlePattern(pis []bool) [][]uint64 {
	patterns := make([][]uint64, len(pis))
	for i, v := range pis {
		w := uint64(0)
		if v {
			w = ^uint64(0)
		}
		patterns[i] = []uint64{w}
	}
	return patterns
}

// Script renders the counterexample as a testbench that applies the
// assignment, checks every output port against the gate-level reference
// values, steps the clock once and checks every next-state bit. The
// expectations are recomputed from the netlist itself, so replaying the
// script through internal/gatesim passes by construction while any
// functionally different artifact fails at the diverging bit.
func (cx *Counterexample) Script(nl *netlist.Netlist) (string, error) {
	side, err := netlistSide(nl)
	if err != nil {
		return "", err
	}
	_, outs := side.sim(singlePattern(cx.PIs))
	ref := make([]bool, len(outs))
	for j := range outs {
		ref[j] = outs[j][0]&1 == 1
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "# equivalence counterexample for %s\n", nl.Name)
	fmt.Fprintf(&sb, "# combinational input assignment: %s\n", cx.Assignment)
	pos := 0
	for i := range nl.Inputs {
		p := &nl.Inputs[i]
		bits := cx.PIs[pos : pos+p.Width()]
		pos += p.Width()
		fmt.Fprintf(&sb, "setbits %s %s\n", p.Name, testbench.FormatBits(bits))
	}
	for i := range nl.FFs {
		fmt.Fprintf(&sb, "setff %d %d\n", i, b2i(cx.PIs[pos]))
		pos++
	}
	if pos != len(cx.PIs) {
		return "", fmt.Errorf("equiv: cex has %d input bits, netlist wants %d", len(cx.PIs), pos)
	}
	sb.WriteString("eval\n")
	pos = 0
	for i := range nl.Outputs {
		p := &nl.Outputs[i]
		bits := ref[pos : pos+p.Width()]
		pos += p.Width()
		fmt.Fprintf(&sb, "expectbits %s %s\n", p.Name, testbench.FormatBits(bits))
	}
	if len(nl.FFs) > 0 {
		sb.WriteString("step\n")
		for i := range nl.FFs {
			fmt.Fprintf(&sb, "expectff %d %d\n", i, b2i(ref[pos]))
			pos++
		}
	}
	return sb.String(), nil
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
