package equiv

import (
	"fmt"

	"c2nn/internal/aig"
	"c2nn/internal/irlint/diag"
	"c2nn/internal/lutmap"
	"c2nn/internal/netlist"
)

// Equivalence-stage lint rules: the SAT miters and the per-LUT proof
// chain report through the same diag registry as every other pipeline
// stage, so `c2nn lint` surfaces a broken compile stage as an EQ
// diagnostic with the counterexample location attached.
var (
	// RuleNetlistAIG flags a netlist↔AIG miter the solver proved SAT:
	// the bit-blasted netlist and the and-inverter graph compute
	// different functions on some input.
	RuleNetlistAIG = diag.Register(diag.Rule{
		ID: "EQ001", Stage: diag.StageEquiv, Severity: diag.Error,
		Summary: "netlist and AIG must be combinationally equivalent (SAT miter)",
	})
	// RuleAIGLUT flags an AIG↔LUT-graph miter the solver proved SAT.
	RuleAIGLUT = diag.Register(diag.Rule{
		ID: "EQ002", Stage: diag.StageEquiv, Severity: diag.Error,
		Summary: "AIG and mapped LUT graph must be combinationally equivalent (SAT miter)",
	})
	// RuleNetlistLUT flags the transitive netlist↔LUT miter — redundant
	// with EQ001+EQ002 by construction, kept to catch compensating
	// encoder bugs.
	RuleNetlistLUT = diag.Register(diag.Rule{
		ID: "EQ003", Stage: diag.StageEquiv, Severity: diag.Error,
		Summary: "netlist and mapped LUT graph must be combinationally equivalent (SAT miter)",
	})
	// RulePolyTable flags a LUT whose Möbius polynomial disagrees with
	// its truth table on some assignment (exhaustive 2^k check).
	RulePolyTable = diag.Register(diag.Rule{
		ID: "EQ004", Stage: diag.StageEquiv, Severity: diag.Error,
		Summary: "every LUT's multi-linear polynomial must equal its truth table on all 2^k rows",
	})
	// RuleThresholdTable flags a two-layer threshold block whose
	// realised value disagrees with the LUT truth table, or a term
	// neuron whose CSR row/bias does not implement its monomial.
	RuleThresholdTable = diag.Register(diag.Rule{
		ID: "EQ005", Stage: diag.StageEquiv, Severity: diag.Error,
		Summary: "every LUT's threshold block must realise its truth table on all 2^k rows",
	})
	// RulePairing flags broken positional invariants between the
	// stages' PI/PO lists — the precondition that lets the miters share
	// primary-input variables.
	RulePairing = diag.Register(diag.Rule{
		ID: "EQ006", Stage: diag.StageEquiv, Severity: diag.Error,
		Summary: "stage PI/PO pairing must be positionally consistent across netlist, AIG and LUT graph",
	})
	// RuleTrace flags model-trace provenance that does not match the
	// graph it claims to be compiled from.
	RuleTrace = diag.Register(diag.Rule{
		ID: "EQ007", Stage: diag.StageEquiv, Severity: diag.Error,
		Summary: "model trace provenance must match the mapped LUT graph",
	})
	// RuleInconclusive warns when a miter exhausted its conflict budget
	// before reaching a verdict — the proof is incomplete, not wrong.
	RuleInconclusive = diag.Register(diag.Rule{
		ID: "EQ008", Stage: diag.StageEquiv, Severity: diag.Warning,
		Summary: "equivalence verdict inconclusive: solver exhausted its conflict budget",
	})
)

// miterRule maps each stage pair onto its diagnostic rule.
func miterRule(s StagePair) diag.Rule {
	switch s {
	case StageNetlistAIG:
		return RuleNetlistAIG
	case StageAIGLUT:
		return RuleAIGLUT
	default:
		return RuleNetlistLUT
	}
}

// chainRule maps each chain-violation kind onto its diagnostic rule:
// polynomial disagreements are EQ004, trace provenance is EQ007, and
// everything downstream of the polynomial (term neurons, realised
// values, output wiring) is EQ005.
func chainRule(k ChainKind) diag.Rule {
	switch k {
	case ChainPoly:
		return RulePolyTable
	case ChainTrace:
		return RuleTrace
	default:
		return RuleThresholdTable
	}
}

// LintPairing runs the EQ006 positional-pairing check and returns one
// diagnostic per violation.
func LintPairing(nl *netlist.Netlist, ag *aig.AIG, aigOuts []aig.Lit, m *lutmap.Mapping) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, e := range VerifyPairing(nl, ag, aigOuts, m) {
		ds = append(ds, RulePairing.New(nl.Name, "%s", e))
	}
	return ds
}

// Lint converts a proof certificate into diagnostics: one EQ001–EQ003
// error per SAT miter (with the failing output and a rendered
// counterexample assignment in the message), one EQ008 warning per
// inconclusive miter, and one EQ004/EQ005/EQ007 error per chain issue.
func (r *Result) Lint() []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, m := range r.Miters {
		loc := fmt.Sprintf("%s L=%d %s", r.Circuit, r.L, m.Stage)
		switch m.Status {
		case NotEquivalent:
			msg := fmt.Sprintf("miter SAT at output %d", m.FailingOutput)
			if m.Cex != nil {
				msg += fmt.Sprintf(": inputs %s diverge at outputs %v", m.Cex.Assignment, m.Cex.Diverging)
			}
			ds = append(ds, miterRule(m.Stage).New(loc, "%s", msg))
		case Inconclusive:
			ds = append(ds, RuleInconclusive.New(loc,
				"output miter undecided after %d conflicts", m.Conflicts))
		}
	}
	if r.Chain != nil {
		for _, iss := range r.Chain.Issues {
			loc := fmt.Sprintf("%s L=%d", r.Circuit, r.L)
			if iss.LUT >= 0 {
				loc = fmt.Sprintf("%s lut %d", loc, iss.LUT)
				if iss.Term >= 0 {
					loc = fmt.Sprintf("%s term %d", loc, iss.Term)
				}
			}
			ds = append(ds, chainRule(iss.Kind).New(loc, "%s", iss.Msg))
		}
	}
	return ds
}
