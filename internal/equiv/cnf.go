// Package equiv is the formal equivalence checker: it statically
// proves that every compile stage of the pipeline preserves circuit
// function, turning the paper's "computationally equivalent" claim
// into a certificate instead of a sampled observation.
//
// Three independent Tseitin encoders lower the bit-blasted netlist,
// the and-inverter graph and the mapped LUT graph into CNF over a
// shared set of primary-input variables (the combinational inputs of
// the flip-flop cut: primary input bits then flip-flop Q pins). A
// simulation-guided SAT sweep (the ABC `cec` lineage) proves internal
// node equivalences bottom-up so the final per-output miters are
// local; any satisfiable miter yields a model that is replayed as a
// testbench counterexample. The LUT→polynomial→threshold-block chain
// is proven exhaustively per LUT (≤ 2^L rows) in lutchain.go. See
// docs/EQUIV.md.
package equiv

import (
	"fmt"

	"c2nn/internal/aig"
	"c2nn/internal/lutmap"
	"c2nn/internal/netlist"
	"c2nn/internal/sat"
	"c2nn/internal/truthtab"
)

// cnf wraps a SAT solver with structurally-hashing Tseitin gate
// constructors: operands are constant-folded and canonically ordered,
// and each distinct (op, operands) triple allocates exactly one output
// variable — so structurally identical logic, including logic repeated
// across the two sides of a miter, shares variables and needs no SAT
// call to be proven equal. Every encoded circuit also shares the single
// constTrue literal.
//
// The builder also records, per output variable, the operand literals
// of its defining gate (defs/defN). The transitive closure of that
// relation is the exact structural cone of a literal — a fanin-closed
// variable set in the sense Solver.SetDecisionVars requires, so the
// sweep can restrict each pair proof to the two cones instead of the
// whole circuit.
type cnf struct {
	s         *sat.Solver
	constTrue sat.Lit
	gates     int // Tseitin gates emitted (CNF size metric beside clauses)
	ands      map[[2]sat.Lit]sat.Lit
	xors      map[[2]sat.Lit]sat.Lit
	muxes     map[[3]sat.Lit]sat.Lit
	defs      [][3]sat.Lit // operand literals of the gate defining each var
	defN      []uint8      // operand count; 0 for PIs and constants
}

func newCNF() *cnf {
	c := &cnf{
		s:     sat.New(),
		ands:  make(map[[2]sat.Lit]sat.Lit),
		xors:  make(map[[2]sat.Lit]sat.Lit),
		muxes: make(map[[3]sat.Lit]sat.Lit),
	}
	c.constTrue = c.newLit()
	c.s.AddClause(c.constTrue)
	return c
}

func (c *cnf) newLit() sat.Lit {
	l := sat.MkLit(c.s.NewVar(), false)
	c.defs = append(c.defs, [3]sat.Lit{})
	c.defN = append(c.defN, 0)
	return l
}

func (c *cnf) setDef(out sat.Lit, ops ...sat.Lit) {
	v := out.Var()
	c.defN[v] = uint8(len(ops))
	copy(c.defs[v][:], ops)
}

func (c *cnf) constant(v bool) sat.Lit { return c.constTrue.FlipIf(!v) }

// andGate returns a literal constrained to a AND b.
func (c *cnf) andGate(a, b sat.Lit) sat.Lit {
	switch {
	case a == c.constant(false) || b == c.constant(false) || a == b.Flip():
		return c.constant(false)
	case a == c.constant(true) || a == b:
		return b
	case b == c.constant(true):
		return a
	}
	if b < a {
		a, b = b, a
	}
	if out, ok := c.ands[[2]sat.Lit{a, b}]; ok {
		return out
	}
	out := c.newLit()
	c.gates++
	c.setDef(out, a, b)
	c.s.AddClause(out.Flip(), a)
	c.s.AddClause(out.Flip(), b)
	c.s.AddClause(out, a.Flip(), b.Flip())
	c.ands[[2]sat.Lit{a, b}] = out
	return out
}

// orGate returns a literal constrained to a OR b.
func (c *cnf) orGate(a, b sat.Lit) sat.Lit {
	return c.andGate(a.Flip(), b.Flip()).Flip()
}

// xorGate returns a literal constrained to a XOR b. The cache key uses
// positive operands; polarity rides on the returned literal, so xor(a,b)
// and xor(¬a,b) share one variable.
func (c *cnf) xorGate(a, b sat.Lit) sat.Lit {
	switch {
	case a == c.constant(false):
		return b
	case a == c.constant(true):
		return b.Flip()
	case b == c.constant(false):
		return a
	case b == c.constant(true):
		return a.Flip()
	case a == b:
		return c.constant(false)
	case a == b.Flip():
		return c.constant(true)
	}
	neg := a.Neg() != b.Neg()
	pa, pb := sat.MkLit(int(a.Var()), false), sat.MkLit(int(b.Var()), false)
	if pb < pa {
		pa, pb = pb, pa
	}
	if out, ok := c.xors[[2]sat.Lit{pa, pb}]; ok {
		return out.FlipIf(neg)
	}
	out := c.newLit()
	c.gates++
	c.setDef(out, pa, pb)
	c.s.AddClause(out.Flip(), pa, pb)
	c.s.AddClause(out.Flip(), pa.Flip(), pb.Flip())
	c.s.AddClause(out, pa.Flip(), pb)
	c.s.AddClause(out, pa, pb.Flip())
	c.xors[[2]sat.Lit{pa, pb}] = out
	return out.FlipIf(neg)
}

// muxGate returns a literal constrained to (sel ? d1 : d0).
func (c *cnf) muxGate(sel, d0, d1 sat.Lit) sat.Lit {
	switch {
	case sel == c.constant(false):
		return d0
	case sel == c.constant(true):
		return d1
	case d0 == d1:
		return d0
	case d0 == d1.Flip():
		return c.xorGate(sel, d0)
	case d0 == c.constant(false):
		return c.andGate(sel, d1)
	case d1 == c.constant(false):
		return c.andGate(sel.Flip(), d0)
	case d0 == c.constant(true):
		return c.orGate(sel.Flip(), d1)
	case d1 == c.constant(true):
		return c.orGate(sel, d0)
	}
	if sel.Neg() {
		sel = sel.Flip()
		d0, d1 = d1, d0
	}
	if out, ok := c.muxes[[3]sat.Lit{sel, d0, d1}]; ok {
		return out
	}
	out := c.newLit()
	c.gates++
	c.setDef(out, sel, d0, d1)
	c.s.AddClause(out.Flip(), sel.Flip(), d1)
	c.s.AddClause(out.Flip(), sel, d0)
	c.s.AddClause(out, sel.Flip(), d1.Flip())
	c.s.AddClause(out, sel, d0.Flip())
	c.muxes[[3]sat.Lit{sel, d0, d1}] = out
	return out
}

// assertEqual adds the two binary clauses making a and b equal.
func (c *cnf) assertEqual(a, b sat.Lit) {
	c.s.AddClause(a.Flip(), b)
	c.s.AddClause(a, b.Flip())
}

// encodeNetlist lowers the combinational core of a netlist into CNF.
// piLits holds one literal per combinational input in CombInputs order
// with the two constants removed. It returns one literal per gate
// (netlist gate order) plus the net→literal map for output lookup.
func encodeNetlist(c *cnf, nl *netlist.Netlist, piLits []sat.Lit) ([]sat.Lit, map[netlist.NetID]sat.Lit, error) {
	lev, err := nl.Levelize()
	if err != nil {
		return nil, nil, err
	}
	lits := make(map[netlist.NetID]sat.Lit, nl.NumNets())
	lits[netlist.ConstZero] = c.constant(false)
	lits[netlist.ConstOne] = c.constant(true)
	i := 0
	for _, id := range nl.CombInputs() {
		if id == netlist.ConstZero || id == netlist.ConstOne {
			continue
		}
		lits[id] = piLits[i]
		i++
	}
	if i != len(piLits) {
		return nil, nil, fmt.Errorf("equiv: %d PI literals for %d combinational inputs", len(piLits), i)
	}

	gateLits := make([]sat.Lit, len(nl.Gates))
	for _, gi := range lev.Order {
		g := &nl.Gates[gi]
		in := g.Inputs()
		fan := make([]sat.Lit, len(in))
		for k, id := range in {
			l, ok := lits[id]
			if !ok {
				return nil, nil, fmt.Errorf("equiv: gate %d reads undriven net %s", gi, nl.NameOf(id))
			}
			fan[k] = l
		}
		var out sat.Lit
		switch g.Kind {
		case netlist.Buf:
			out = fan[0]
		case netlist.Not:
			out = fan[0].Flip()
		case netlist.And:
			out = c.andGate(fan[0], fan[1])
		case netlist.Or:
			out = c.orGate(fan[0], fan[1])
		case netlist.Xor:
			out = c.xorGate(fan[0], fan[1])
		case netlist.Nand:
			out = c.andGate(fan[0], fan[1]).Flip()
		case netlist.Nor:
			out = c.orGate(fan[0], fan[1]).Flip()
		case netlist.Xnor:
			out = c.xorGate(fan[0], fan[1]).Flip()
		case netlist.Mux:
			out = c.muxGate(fan[0], fan[1], fan[2])
		default:
			return nil, nil, fmt.Errorf("equiv: unsupported gate kind %s", g.Kind)
		}
		lits[g.Out] = out
		gateLits[gi] = out
	}
	return gateLits, lits, nil
}

// encodeAIG lowers an and-inverter graph into CNF, returning one
// literal per node (constant and PIs included, in node order).
func encodeAIG(c *cnf, g *aig.AIG, piLits []sat.Lit) ([]sat.Lit, error) {
	if len(piLits) != g.NumPIs() {
		return nil, fmt.Errorf("equiv: %d PI literals for an AIG with %d PIs", len(piLits), g.NumPIs())
	}
	nodeLits := make([]sat.Lit, g.NumNodes())
	nodeLits[0] = c.constant(false)
	copy(nodeLits[1:], piLits)
	litOf := func(l aig.Lit) sat.Lit { return nodeLits[l.Node()].FlipIf(l.Neg()) }
	for n := int32(g.NumPIs()) + 1; n < int32(g.NumNodes()); n++ {
		a, b := g.Fanins(n)
		nodeLits[n] = c.andGate(litOf(a), litOf(b))
	}
	return nodeLits, nil
}

// encodeLUTGraph lowers the LUT computation graph into CNF, returning
// one literal per LUT. Each truth table is decomposed by a memoized
// Shannon expansion (a reduced, ordered mux tree), so the encoding
// never enumerates 2^K rows explicitly and shared cofactors cost one
// ITE node.
func encodeLUTGraph(c *cnf, g *lutmap.Graph, piLits []sat.Lit) ([]sat.Lit, error) {
	if len(piLits) != g.NumPIs {
		return nil, fmt.Errorf("equiv: %d PI literals for a LUT graph with %d PIs", len(piLits), g.NumPIs)
	}
	lutLits := make([]sat.Lit, len(g.LUTs))
	ref := func(r lutmap.NodeRef) (sat.Lit, error) {
		if r.IsPI() {
			if r.PI() >= len(piLits) {
				return 0, fmt.Errorf("equiv: LUT input references PI %d of %d", r.PI(), len(piLits))
			}
			return piLits[r.PI()], nil
		}
		return lutLits[r.LUT()], nil
	}
	for i := range g.LUTs {
		l := &g.LUTs[i]
		ins := make([]sat.Lit, len(l.Ins))
		for k, r := range l.Ins {
			lit, err := ref(r)
			if err != nil {
				return nil, err
			}
			ins[k] = lit
		}
		lutLits[i] = encodeTable(c, l.Table, ins, make(map[string]sat.Lit))
	}
	return lutLits, nil
}

// tableKey serialises a truth table for cofactor memoization within
// one LUT encoding. The variable count is part of the key because
// Cofactor shrinks tables, so equal bit content at different arities
// describes different functions of the remaining inputs.
func tableKey(t truthtab.Table) string {
	buf := make([]byte, 0, 1+8*len(t.Words))
	buf = append(buf, byte(t.NumVars))
	for _, w := range t.Words {
		for k := 0; k < 8; k++ {
			buf = append(buf, byte(w>>uint(8*k)))
		}
	}
	return string(buf)
}

// encodeTable builds the mux tree of a truth table over the given input
// literals (len(ins) == t.NumVars): a Shannon expansion on the top
// variable, memoized so equal cofactors share one node — a reduced,
// ordered decision-diagram encoding rather than a 2^K-row expansion.
func encodeTable(c *cnf, t truthtab.Table, ins []sat.Lit, memo map[string]sat.Lit) sat.Lit {
	if len(ins) != t.NumVars {
		panic(fmt.Sprintf("equiv: %d input literals for a %d-variable table", len(ins), t.NumVars))
	}
	if isConst, v := t.IsConst(); isConst {
		return c.constant(v)
	}
	key := tableKey(t)
	if l, ok := memo[key]; ok {
		return l
	}
	v := t.NumVars - 1 // Cofactor removes the split variable
	l0 := encodeTable(c, t.Cofactor(v, false), ins[:v], memo)
	l1 := encodeTable(c, t.Cofactor(v, true), ins[:v], memo)
	var out sat.Lit
	switch {
	case l0 == l1:
		out = l0
	case l0 == l1.Flip():
		out = c.xorGate(ins[v], l0)
	case l0 == c.constant(false):
		out = c.andGate(ins[v], l1)
	case l1 == c.constant(false):
		out = c.andGate(ins[v].Flip(), l0)
	case l0 == c.constant(true):
		out = c.orGate(ins[v].Flip(), l1)
	case l1 == c.constant(true):
		out = c.orGate(ins[v], l0)
	default:
		out = c.muxGate(ins[v], l0, l1)
	}
	memo[key] = out
	return out
}
