package equiv

import (
	"fmt"
	"math/rand"
	"testing"

	"c2nn/internal/fault"
	"c2nn/internal/gatesim"
	"c2nn/internal/lutmap"
	"c2nn/internal/nn"
	"c2nn/internal/raceflag"
	"c2nn/internal/simengine"
	"c2nn/internal/testbench"
	"c2nn/internal/truthtab"
)

// mutant is one deliberately broken compile artifact.
type mutant struct {
	name  string
	graph *lutmap.Graph
}

// cloneAt returns a copy of g sharing everything except LUT u, whose
// struct is detached so the caller can replace its table or inputs.
func cloneAt(g *lutmap.Graph, u int) *lutmap.Graph {
	ng := *g
	ng.LUTs = append([]lutmap.LUT(nil), g.LUTs...)
	ng.LUTs[u].Ins = append([]lutmap.NodeRef(nil), g.LUTs[u].Ins...)
	return &ng
}

// stuckTable reproduces internal/fault's faulty-table semantics: the
// whole-output constant for output stuck-ats, the pin-forced cofactor
// spread back over all rows for pin stuck-ats.
func stuckTable(t truthtab.Table, f fault.Fault) truthtab.Table {
	switch f.Kind {
	case fault.OutSA0:
		return truthtab.Const(t.NumVars, false)
	case fault.OutSA1:
		return truthtab.Const(t.NumVars, true)
	}
	r := truthtab.New(t.NumVars)
	for i := 0; i < t.Size(); i++ {
		src := i &^ (1 << uint(f.Pin))
		if f.StuckVal() {
			src |= 1 << uint(f.Pin)
		}
		r.SetBit(i, t.Bit(src))
	}
	return r
}

// buildMutants derives the mutation corpus from the collapsed fault
// universe: the exact faulty table of a simulated stuck-at class
// representative, plus a single truth-table bit flip and a single pin
// rewire at the same site. The universe is far larger than a SAT call
// per member allows (UART L=4 alone has ~6000 simulated classes), so
// sites are stride-sampled down to roughly maxSites, spreading the
// corpus across the whole graph instead of truncating it.
func buildMutants(g *lutmap.Graph, numFFs, maxSites int) []mutant {
	u := fault.Enumerate(g, numFFs)
	var reps []fault.Fault
	for _, cl := range u.Classes {
		if cl.Status != fault.Simulated || cl.Rep.Kind == fault.SEU {
			continue
		}
		reps = append(reps, cl.Rep)
	}
	stride := 1
	if len(reps) > maxSites {
		stride = (len(reps) + maxSites - 1) / maxSites
	}
	var ms []mutant
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < len(reps); i += stride {
		f := reps[i]
		ng := cloneAt(g, f.LUT)
		ng.LUTs[f.LUT].Table = stuckTable(g.LUTs[f.LUT].Table, f)
		ms = append(ms, mutant{name: f.String(), graph: ng})

		// A single-bit table flip at the same site: the finest-grained
		// functional mutation the graph admits.
		row := rng.Intn(g.LUTs[f.LUT].Table.Size())
		fg := cloneAt(g, f.LUT)
		tbl := g.LUTs[f.LUT].Table
		ft := truthtab.New(tbl.NumVars)
		for i := 0; i < tbl.Size(); i++ {
			ft.SetBit(i, tbl.Bit(i) != (i == row))
		}
		fg.LUTs[f.LUT].Table = ft
		ms = append(ms, mutant{name: fmt.Sprintf("lut%d/flip%d", f.LUT, row), graph: fg})

		// A pin rewire at pin-fault sites: retarget the pin to another
		// topologically earlier node (or PI), keeping the DAG acyclic.
		if f.Kind == fault.PinSA0 || f.Kind == fault.PinSA1 {
			old := g.LUTs[f.LUT].Ins[f.Pin]
			alt := lutmap.PIRef(rng.Intn(g.NumPIs))
			if f.LUT > 0 && rng.Intn(2) == 0 {
				alt = lutmap.NodeRef(int32(rng.Intn(f.LUT)))
			}
			if alt != old {
				rg := cloneAt(g, f.LUT)
				rg.LUTs[f.LUT].Ins[f.Pin] = alt
				ms = append(ms, mutant{name: fmt.Sprintf("lut%d.in%d/rewire", f.LUT, f.Pin), graph: rg})
			}
		}
	}
	return ms
}

// diverges simulates both sides on random stimulus and reports whether
// any output differs — the ground truth the prover is judged against
// (sound in the diverging direction only; agreement on random patterns
// proves nothing).
func diverges(a, b *sideIR, numPIs, words int, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	patterns := make([][]uint64, numPIs)
	for i := range patterns {
		p := make([]uint64, words)
		for w := range p {
			p[w] = rng.Uint64()
		}
		patterns[i] = p
	}
	_, outsA := a.sim(patterns)
	_, outsB := b.sim(patterns)
	for j := range outsA {
		for w := range outsA[j] {
			if outsA[j][w] != outsB[j][w] {
				return true
			}
		}
	}
	return false
}

// TestMutationDetection is the checker's self-test: every mutant whose
// divergence random simulation can witness MUST come back NotEquivalent
// with a counterexample, and every Equivalent verdict MUST be
// consistent with simulation (UNSAT is a proof; a diverging pattern
// would refute it).
func TestMutationDetection(t *testing.T) {
	nl, ag, aigOuts, m := compile(t, "UART", 4)
	nlSide, err := netlistSide(nl)
	if err != nil {
		t.Fatal(err)
	}
	sites := 60
	if testing.Short() || raceflag.Enabled {
		sites = 12
	}
	mutants := buildMutants(m.Graph, len(nl.FFs), sites)
	if len(mutants) < sites {
		t.Fatalf("mutation corpus too small: %d", len(mutants))
	}
	var detected, equivalent, truthDiverging int
	for _, mu := range mutants {
		mm := *m
		mm.Graph = mu.graph
		res, err := Prove(nl, ag, aigOuts, &mm, nil, Options{
			Stages:    []StagePair{StageNetlistLUT},
			SkipChain: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", mu.name, err)
		}
		truth := diverges(nlSide, lutSide(mu.graph), len(m.PINets), 8, 99)
		if truth {
			truthDiverging++
		}
		st := res.Miters[0].Status
		switch st {
		case NotEquivalent:
			detected++
			cx := res.FirstCex()
			if cx == nil {
				t.Errorf("%s: SAT verdict without a counterexample", mu.name)
			} else if len(cx.Diverging) == 0 {
				t.Errorf("%s: counterexample does not diverge", mu.name)
			}
		case Equivalent:
			equivalent++
			if truth {
				t.Errorf("%s: simulation diverges but the miter was proven UNSAT", mu.name)
			}
		default:
			t.Errorf("%s: inconclusive verdict on a mutant", mu.name)
		}
		if truth && st != NotEquivalent {
			t.Errorf("%s: known-diverging mutant not detected (got %s)", mu.name, st)
		}
	}
	t.Logf("mutants=%d detected=%d equivalent=%d sim-diverging=%d",
		len(mutants), detected, equivalent, truthDiverging)
	if detected < truthDiverging {
		t.Fatalf("detected %d mutants, simulation alone witnesses %d", detected, truthDiverging)
	}
	if detected*2 < len(mutants) {
		t.Fatalf("only %d/%d mutants detected — corpus or checker is broken", detected, len(mutants))
	}
}

// TestCexRoundTrip renders miter counterexamples as .tb scripts and
// replays them: the gate-level reference simulator must accept every
// script (the expectations are computed from the netlist), the network
// compiled from the MUTANT graph must fail it at the diverging bit, and
// the network compiled from the true graph must accept it again.
func TestCexRoundTrip(t *testing.T) {
	nl, ag, aigOuts, m := compile(t, "UART", 4)
	prog, err := gatesim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	goodModel, err := nn.Build(nl, m, nn.BuildOptions{Merge: true, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	goodEng, err := simengine.New(goodModel, simengine.Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer goodEng.Close()

	mutants := buildMutants(m.Graph, len(nl.FFs), 8)
	rounds := 0
	for _, mu := range mutants {
		if rounds >= 4 {
			break
		}
		mm := *m
		mm.Graph = mu.graph
		res, err := Prove(nl, ag, aigOuts, &mm, nil, Options{
			Stages:    []StagePair{StageNetlistLUT},
			SkipChain: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", mu.name, err)
		}
		cx := res.FirstCex()
		if cx == nil {
			continue
		}
		rounds++

		src, err := cx.Script(nl)
		if err != nil {
			t.Fatalf("%s: rendering script: %v", mu.name, err)
		}
		script, err := testbench.Parse(src)
		if err != nil {
			t.Fatalf("%s: parsing rendered script:\n%s\n%v", mu.name, src, err)
		}

		// The netlist reference must accept its own expectations.
		if _, err := script.RunSim(gatesim.NewSim(prog)); err != nil {
			t.Errorf("%s: gate-level replay rejected the cex: %v", mu.name, err)
		}
		// The faithful network must accept them too.
		if _, err := script.Run(goodEng); err != nil {
			t.Errorf("%s: true network rejected the cex: %v", mu.name, err)
		}
		// The mutant network must diverge exactly where the miter said.
		badModel, err := nn.Build(nl, &mm, nn.BuildOptions{Merge: true, L: 4})
		if err != nil {
			t.Fatalf("%s: building mutant network: %v", mu.name, err)
		}
		badEng, err := simengine.New(badModel, simengine.Options{Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, err = script.Run(badEng)
		badEng.Close()
		if err == nil {
			t.Errorf("%s: mutant network accepted its own counterexample", mu.name)
		}
	}
	if rounds == 0 {
		t.Fatal("no mutant produced a counterexample to round-trip")
	}
}
