package c2nn

// Round-trip tests: a netlist emitted as structural Verilog by
// netlist.WriteVerilog must re-elaborate through the frontend into a
// functionally identical circuit. This exercises writer, lexer, parser
// and synthesis against each other.

import (
	"math/rand"
	"strings"
	"testing"

	"c2nn/internal/gatesim"
	"c2nn/internal/netlist"
	"c2nn/internal/synth"
)

func roundTrip(t *testing.T, nl *netlist.Netlist) *netlist.Netlist {
	t.Helper()
	var sb strings.Builder
	if err := nl.WriteVerilog(&sb); err != nil {
		t.Fatalf("WriteVerilog: %v", err)
	}
	back, err := synth.ElaborateSource("", map[string]string{"rt.v": sb.String()})
	if err != nil {
		t.Fatalf("re-elaborate: %v\nsource:\n%s", err, sb.String())
	}
	return back
}

func TestWriterRoundTripRandom(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < trials; trial++ {
		nl := randomCircuit(rng, 2+rng.Intn(8), 10+rng.Intn(120), rng.Intn(10))
		// The writer does not carry FF init values; normalise to zero.
		for i := range nl.FFs {
			nl.FFs[i].Init = false
		}
		back := roundTrip(t, nl)
		if back.NumFFs() != nl.NumFFs() {
			t.Fatalf("trial %d: FFs %d -> %d", trial, nl.NumFFs(), back.NumFFs())
		}

		progA, err := gatesim.Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		progB, err := gatesim.Compile(back)
		if err != nil {
			t.Fatal(err)
		}
		simA := gatesim.NewSim(progA)
		simB := gatesim.NewSim(progB)

		for cyc := 0; cyc < 16; cyc++ {
			v := rng.Uint64()
			simA.Poke("in", v)
			simB.Poke("in", v)
			simA.Eval()
			simB.Eval()
			a, _ := simA.Peek("out")
			bVal, errB := simB.Peek("out")
			if errB != nil {
				bVal, _ = simB.Peek("out_o")
			}
			if a != bVal {
				t.Fatalf("trial %d cycle %d: out %#x != %#x", trial, cyc, a, bVal)
			}
			simA.Step()
			simB.Step()
		}
	}
}

func TestWriterRoundTripBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark round trips")
	}
	for _, name := range []string{"UART", "SPI", "DMA"} {
		model, err := CompileBenchmark(name, Options{L: 3})
		if err != nil {
			t.Fatal(err)
		}
		_ = model
		c := mustCircuit(t, name)
		nl, err := c.Elaborate()
		if err != nil {
			t.Fatal(err)
		}
		back := roundTrip(t, nl)
		progA, _ := gatesim.Compile(nl)
		progB, _ := gatesim.Compile(back)
		simA := gatesim.NewSim(progA)
		simB := gatesim.NewSim(progB)
		rng := rand.New(rand.NewSource(5))
		for cyc := 0; cyc < 24; cyc++ {
			for i := range nl.Inputs {
				port := &nl.Inputs[i]
				v := rng.Uint64()
				if port.Width() < 64 {
					v &= 1<<uint(port.Width()) - 1
				}
				simA.Poke(port.Name, v)
				simB.Poke(port.Name, v)
			}
			simA.Eval()
			simB.Eval()
			for i := range nl.Outputs {
				oname := nl.Outputs[i].Name
				a, _ := simA.Peek(oname)
				b, errB := simB.Peek(oname)
				if errB != nil {
					b, _ = simB.Peek(oname + "_o")
				}
				if a != b {
					t.Fatalf("%s cycle %d: %s = %#x vs %#x", name, cyc, oname, a, b)
				}
			}
			simA.Step()
			simB.Step()
		}
	}
}

func mustCircuit(t *testing.T, name string) Circuit {
	t.Helper()
	for _, c := range Benchmarks() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no circuit %q", name)
	return Circuit{}
}
